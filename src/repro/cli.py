"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``paths`` — describe the communication paths.
* ``latency`` — end-to-end latency of one request shape.
* ``throughput`` — peak throughput and the binding resource.
* ``sweep`` — regenerate a figure's series (fig4/fig7/fig8/fig9/fig10/fig11).
* ``compare`` — RNIC-vs-SmartNIC summary for any catalog device.
* ``advise`` — run the offload advisor on a workload profile.
* ``audit`` — run the anomaly detectors over flows described in JSON.
* ``faults`` — goodput/latency of an RC verb stream under injected
  faults (``--fault-plan FILE`` or a ``--rates`` loss sweep).
* ``trace`` — nanosecond span trace of one verb through the simulated
  datapath; emits Chrome/Perfetto JSON, ``--report`` attribution
  tables, or a ``--tree`` rendering (see docs/observability.md).
* ``trace-gen`` / ``trace-solve`` — generate a JSONL request trace and
  solve its aggregate throughput.
* ``serve`` — run the online path scheduler over a multi-tenant
  workload (adaptive vs ``--static``; ``--engine hybrid`` fast-forwards
  steady state analytically; see docs/scheduling.md).
* ``crosscheck`` — grade the hybrid serving engine against the pure-DES
  reference over the standard scenario families (exact counts +
  toleranced latencies; see docs/performance.md), plus the
  ``cluster-fault`` determinism family: sharded chaos runs must be
  bit-identical across executors and through worker kill/respawn
  (docs/robustness.md).
* ``validate`` — the statistical verification report: scenario
  families replicated across seeds, invariant checks (flow
  conservation, Little's law, utilization bounds), CI-overlap engine
  agreement, and the Fig-4/9/11 reproductions quoted as mean ± CI
  (``--out verification_report.md``; see docs/validation.md).

``compare`` accepts ``--nic`` to pick a catalog device
(bluefield-2 default, bluefield-3, stingray-ps225).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.advisor import Advisor, WorkloadProfile
from repro.core.anomalies import detect_all
from repro.core.harness import LatencyBench, ThroughputBench
from repro.core.latency import LatencyModel
from repro.core.options import RunOptions
from repro.core.paths import CommPath, Opcode
from repro.core.plot import plot_sweeps
from repro.core.report import format_table
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.net.topology import paper_testbed
from repro.nic.catalog import CATALOG, lookup
from repro.nic.smartnic import SmartNIC
from repro.units import GB, fmt_size
from repro.workloads import (
    FIG4_PAYLOADS,
    FIG7_RANGES,
    FIG8_PAYLOADS,
    FIG9_PAYLOADS,
    FIG10_BATCHES,
    FIG11_MACHINES,
)

_PATHS = {p.value: p for p in CommPath}
_PATHS.update({p.name.lower(): p for p in CommPath})
# Bare figure-2 numbers as shorthand; "3" means the host->SoC direction
# (use snic-3-s2h for the other one).
_PATHS.update({"1": CommPath.SNIC1, "2": CommPath.SNIC2,
               "3": CommPath.SNIC3_H2S})
_OPS = {o.value: o for o in Opcode}


def _parse_size(text: str) -> int:
    """Parse ``64``, ``4K``, ``9M``, ``10G`` into bytes."""
    text = text.strip().upper().rstrip("B")
    multiplier = 1
    for suffix, value in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if text.endswith(suffix):
            multiplier = value
            text = text[:-1]
            break
    try:
        return int(float(text) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse size: {text!r}")


def _path(text: str) -> CommPath:
    key = text.lower().replace("_", "-")
    try:
        return _PATHS.get(key) or _PATHS[key.replace("-", "_")]
    except KeyError:
        choices = ", ".join(sorted({p.value for p in CommPath}))
        raise argparse.ArgumentTypeError(
            f"unknown path {text!r}; choose from {choices}")


def _op(text: str) -> Opcode:
    try:
        return _OPS[text.lower()]
    except KeyError:
        raise argparse.ArgumentTypeError(f"unknown op {text!r}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Off-path SmartNIC characterization (OSDI'23), in simulation")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("paths", help="describe the communication paths")

    for name in ("latency", "throughput"):
        p = sub.add_parser(name, help=f"{name} of one request shape")
        p.add_argument("--path", type=_path, default=CommPath.SNIC1)
        p.add_argument("--op", type=_op, default=Opcode.READ)
        p.add_argument("--payload", type=_parse_size, default="64")
        if name == "throughput":
            p.add_argument("--requesters", type=int, default=11)
            p.add_argument("--range", dest="range_bytes", type=_parse_size,
                           default=str(10 * GB))
            p.add_argument("--doorbell-batch", type=int, default=1)

    p = sub.add_parser("sweep", help="regenerate a figure's series")
    p.add_argument("figure", choices=["fig4", "fig7", "fig8", "fig9",
                                      "fig10", "fig11"])
    p.add_argument("--plot", action="store_true",
                   help="render an ASCII chart instead of a table")
    RunOptions.add_arguments(p)
    p.add_argument("--cache-stats", action="store_true",
                   help="append cache hit/miss counters to the output")

    p = sub.add_parser("compare", help="RNIC vs SmartNIC summary")
    p.add_argument("--nic", choices=sorted(CATALOG), default="bluefield-2")

    p = sub.add_parser("advise", help="offload advisor for a workload")
    p.add_argument("--payload", type=_parse_size, required=True)
    p.add_argument("--read-fraction", type=float, default=0.5)
    p.add_argument("--two-sided-fraction", type=float, default=0.0)
    p.add_argument("--working-set", type=_parse_size, default=str(10 * GB))
    p.add_argument("--hot-range", type=_parse_size, default=None)
    p.add_argument("--host-soc-transfer", action="store_true")

    p = sub.add_parser("audit", help="anomaly audit over flows (JSON)")
    p.add_argument("flows_json",
                   help="path to a JSON list of flow objects, or '-' for stdin")

    p = sub.add_parser("faults",
                       help="goodput/latency under injected faults (DES)")
    p.add_argument("--fault-plan", metavar="FILE", default=None,
                   help="JSON fault plan (see docs/robustness.md); "
                        "overrides --rates")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the injector's RNG streams")
    p.add_argument("--rates", default="0,0.001,0.01",
                   help="comma-separated loss rates for the sweep "
                        "(ignored with --fault-plan)")
    p.add_argument("--ops", type=int, default=200,
                   help="closed-loop verbs per run")
    p.add_argument("--payload", type=_parse_size, default="4K")
    p.add_argument("--op", choices=["read", "write"], default="write")
    p.add_argument("--json", action="store_true",
                   help="emit the raw rows as JSON instead of a table")

    p = sub.add_parser("trace",
                       help="span-trace one verb through the DES datapath")
    p.add_argument("--path", type=_path, default=CommPath.SNIC1,
                   help="communication path (accepts 1/2/3 shorthand; "
                        "3 = host->SoC)")
    p.add_argument("--verb", type=_op, default=Opcode.READ,
                   help="read, write or send")
    p.add_argument("--size", type=_parse_size, default="64",
                   help="payload bytes (accepts 4K style suffixes)")
    p.add_argument("--count", type=int, default=1,
                   help="closed-loop verbs to trace")
    p.add_argument("--seed", type=int, default=0,
                   help="payload-content seed (timing is data-independent)")
    p.add_argument("--report", action="store_true",
                   help="print the latency-attribution tables instead of "
                        "Chrome JSON")
    p.add_argument("--tree", action="store_true",
                   help="print the span tree(s) instead of Chrome JSON")
    p.add_argument("--telemetry", action="store_true",
                   help="snapshot hardware counters around each verb and "
                        "attach the deltas")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the Chrome trace JSON to FILE (open in "
                        "chrome://tracing or https://ui.perfetto.dev)")

    p = sub.add_parser("trace-gen", help="generate a JSONL request trace")
    p.add_argument("out", help="output path")
    p.add_argument("--path", type=_path, default=CommPath.SNIC2)
    p.add_argument("--count", type=int, default=1000)
    p.add_argument("--payload", type=_parse_size, default="256")
    p.add_argument("--read-fraction", type=float, default=0.5)
    p.add_argument("--region", type=_parse_size, default="64M")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("trace-solve",
                       help="peak throughput of a JSONL trace's mix")
    p.add_argument("trace", help="trace path")
    p.add_argument("--requesters", type=int, default=11)

    p = sub.add_parser("serve",
                       help="online path scheduling of tenant streams (DES)")
    p.add_argument("--cluster", metavar="FILE", default=None,
                   help="run a declarative rack-scale cluster scenario "
                        "(JSON ClusterScenario document, e.g. "
                        "examples/rack_scenario.json; docs/cluster.md)")
    p.add_argument("--machines", type=int, default=None,
                   help="with --cluster: override the document's machine "
                        "count (the SNIC/RNIC mix is cycled)")
    p.add_argument("--population-seed", type=int, default=None,
                   help="with --cluster: resample the user population "
                        "under this seed")
    p.add_argument("--placement", choices=["binpack", "round-robin"],
                   default=None,
                   help="with --cluster: override the document's tenant "
                        "placement policy")
    p.add_argument("--no-migrate", action="store_true",
                   help="with --cluster: disable the cluster scheduler's "
                        "SLO/crash migrations (static placement only)")
    p.add_argument("--check", action="store_true",
                   help="with --cluster: audit the finished run against "
                        "the invariant catalog (flow conservation, "
                        "cluster-flow, Little's law, capacity bounds) "
                        "and exit non-zero on any violation")
    p.add_argument("--duration", type=float, default=1_500_000.0,
                   help="arrival-window length in ns (default 1.5 ms)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed of the tenants' request streams")
    p.add_argument("--static", action="store_true",
                   help="pin the advisor's initial placements instead of "
                        "scheduling online (the non-adaptive baseline)")
    p.add_argument("--fault-plan", metavar="FILE", default=None,
                   help="JSON fault plan (e.g. a soc-crash) injected "
                        "into the run")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the injector's RNG streams")
    p.add_argument("--engine", choices=["event", "des-heap", "hybrid"],
                   default="event",
                   help="serving engine: 'event' is pure DES on the "
                        "batched queue (default), 'des-heap' the heap-"
                        "queue opt-out, 'hybrid' fast-forwards steady-"
                        "state windows analytically (docs/performance.md)")
    p.add_argument("--shards", type=int, default=1,
                   help="partition the workload over N lockstep machines "
                        "(repro.sim.shard) instead of one serving run")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for --shards > 1 "
                        "(default: one per shard; 1 = in-process)")
    p.add_argument("--cross-traffic", action="store_true",
                   help="with --shards > 1: bulk tenants ship their "
                        "completions to the next machine over the "
                        "cross-shard fabric (repro.sim.xshard)")
    p.add_argument("--cluster-fault-plan", metavar="FILE", default=None,
                   help="with --shards > 1: JSON cluster fault plan "
                        "(machine-crash, fabric-loss/-delay/-partition/"
                        "-reorder; see docs/robustness.md)")
    p.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                   help="with --shards > 1: write the window-log "
                        "checkpoint here at every barrier")
    p.add_argument("--resume", action="store_true",
                   help="resume from the checkpoint in --checkpoint-dir "
                        "instead of starting fresh")
    p.add_argument("--kill-shard", metavar="NAME", default=None,
                   help="chaos hook: SIGKILL this shard's worker at "
                        "--kill-window and respawn it from the log")
    p.add_argument("--kill-window", type=int, default=1,
                   help="lockstep window at which --kill-shard strikes "
                        "(default 1)")
    p.add_argument("--incident-report", metavar="FILE", default=None,
                   help="write the supervisor's incident log (kills, "
                        "respawns) as JSON")
    p.add_argument("--decisions", action="store_true",
                   help="append the scheduler's decision log")
    p.add_argument("--json", action="store_true",
                   help="emit the per-tenant rows as JSON instead of a table")

    p = sub.add_parser("crosscheck",
                       help="grade the hybrid serving engine against "
                            "pure DES")
    p.add_argument("--duration", type=float, default=1_500_000.0,
                   help="arrival-window length in ns (default 1.5 ms)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed of the tenants' request streams")
    p.add_argument("--scenario", action="append", dest="scenarios",
                   metavar="NAME", default=None,
                   help="run only this scenario family (repeatable; "
                        "default: all of adaptive, static, soc-crash, "
                        "crash-recover, packet-loss, fault-transient, "
                        "cluster-fault)")
    p.add_argument("--json", action="store_true",
                   help="emit the graded results as JSON instead of a table")

    p = sub.add_parser("validate",
                       help="statistical verification report: replicated "
                            "scenarios, invariants, CIs, figure gates")
    p.add_argument("--families", action="append", metavar="NAME",
                   default=None,
                   help="validate only this family (repeatable; 'all' or "
                        "default: every serving + figure family; "
                        "'broken-counter' — the injected violation — "
                        "only runs when named explicitly)")
    p.add_argument("--seeds", type=int, default=3,
                   help="replicates per serving family (default 3)")
    p.add_argument("--duration", type=float, default=400_000.0,
                   help="serving arrival-window length in ns "
                        "(default 400 us)")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes for replication (default: "
                        "serial)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="also write the report as markdown to FILE")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of a table")
    p.add_argument("--check", action="store_true",
                   help="fail (exit 1) unless every row is PASS")
    return parser


# -- command implementations -----------------------------------------------------


def _cmd_paths(args) -> str:
    rows = []
    for path in CommPath:
        ends = path.ends
        rows.append([path.value, path.label, ends.requester,
                     ends.responder.value,
                     "network" if path.uses_network else "internal PCIe"])
    return format_table(
        ["id", "paper label", "requester", "responder memory", "medium"],
        rows, title="Communication paths (Fig 2)")


def _cmd_latency(args) -> str:
    model = LatencyModel(paper_testbed())
    breakdown = model.latency(args.path, args.op, args.payload)
    rows = [[name, f"{value:.0f}"] for name, value in breakdown.segments]
    rows.append(["TOTAL", f"{breakdown.total:.0f}"])
    return format_table(
        ["segment", "ns"], rows,
        title=f"{args.path.label} {args.op.value.upper()} "
              f"{fmt_size(args.payload)}: {breakdown.total_us:.2f} us")


def _cmd_throughput(args) -> str:
    flow = Flow(path=args.path, op=args.op, payload=args.payload,
                requesters=args.requesters, range_bytes=args.range_bytes,
                doorbell_batch=args.doorbell_batch)
    result = ThroughputSolver().solve(Scenario(paper_testbed(), [flow]))
    rows = [
        ["request rate", f"{result.mrps_of(0):.1f} M reqs/s"],
        ["payload bandwidth", f"{result.gbps_of(0):.1f} Gbps"],
        ["bottleneck", result.bottlenecks[0]],
    ]
    return format_table(["metric", "value"], rows, title=flow.name)


def _cmd_compare(args) -> str:
    from dataclasses import replace as _replace

    from repro.nic.rnic import RNIC
    from repro.nic.specs import RNICSpec

    spec = lookup(args.nic)
    # The paper's methodology: the RNIC baseline shares the SmartNIC's
    # NIC cores (Bluefield-2 vs ConnectX-6), so build a matched one.
    baseline = RNICSpec(name=f"{args.nic}-rnic-baseline", cores=spec.cores)
    testbed = _replace(paper_testbed(), snic=SmartNIC(spec),
                       rnic=RNIC(baseline))
    latency = LatencyModel(testbed)
    solver = ThroughputSolver()
    rows = []
    for op in Opcode:
        rnic_lat = latency.latency(CommPath.RNIC1, op, 64).total_us
        snic_lat = latency.latency(CommPath.SNIC1, op, 64).total_us
        rnic_tp = solver.solve(Scenario(testbed, [
            Flow(CommPath.RNIC1, op, 64)])).mrps_of(0)
        snic_tp = solver.solve(Scenario(testbed, [
            Flow(CommPath.SNIC1, op, 64)])).mrps_of(0)
        rows.append([op.value.upper(), f"{rnic_lat:.2f}", f"{snic_lat:.2f}",
                     f"{(snic_lat / rnic_lat - 1) * 100:+.0f}%",
                     f"{rnic_tp:.1f}", f"{snic_tp:.1f}",
                     f"{(snic_tp / rnic_tp - 1) * 100:+.0f}%"])
    return format_table(
        ["verb", "RNIC us", "SNIC us", "lat tax", "RNIC M/s", "SNIC M/s",
         "tput tax"],
        rows, title=f"64 B requests: the {args.nic} performance tax (S3.1)")


def _cmd_sweep(args) -> str:
    options = RunOptions.from_args(args)
    testbed = paper_testbed()
    runner = options.runner(testbed)
    tp = ThroughputBench(testbed, runner)
    out = _run_sweep(args, testbed, tp, runner)
    if options.profile:
        out += "\n\nsweep stage profile\n" + runner.timings.report()
    if args.cache_stats:
        from repro.telemetry import perf_report
        out += "\n\n" + perf_report()
    return out


def _run_sweep(args, testbed, tp, runner) -> str:
    if getattr(args, "plot", False):
        return _cmd_sweep_plot(args, testbed, tp)
    if args.figure == "fig4":
        lat = LatencyBench(testbed, runner)
        parts = [lat.payload_sweep(CommPath.SNIC1, Opcode.READ,
                                   FIG4_PAYLOADS).table(
                     "Fig 4 — SNIC1 READ latency (us)"),
                 tp.payload_sweep(CommPath.SNIC1, Opcode.READ,
                                  FIG4_PAYLOADS).table(
                     "Fig 4 — SNIC1 READ peak throughput (M reqs/s)")]
        return "\n\n".join(parts)
    if args.figure == "fig7":
        return tp.range_sweep(CommPath.SNIC2, Opcode.WRITE, 64, FIG7_RANGES,
                              requesters=2).table(
            "Fig 7 — WRITE to SoC vs address range (M reqs/s)")
    if args.figure == "fig8":
        return tp.payload_sweep(CommPath.SNIC2, Opcode.READ, FIG8_PAYLOADS,
                                metric="gbps").table(
            "Fig 8 — READ to SoC vs payload (Gbps)")
    if args.figure == "fig9":
        return tp.payload_sweep(CommPath.SNIC3_S2H, Opcode.WRITE,
                                FIG9_PAYLOADS, requesters=8,
                                metric="gbps").table(
            "Fig 9 — SoC->host transfer bandwidth (Gbps)")
    if args.figure == "fig10":
        return tp.doorbell_sweep(CommPath.SNIC3_S2H, Opcode.READ, 0,
                                 FIG10_BATCHES, requesters=8).table(
            "Fig 10(b) — SoC-side doorbell batching (M reqs/s)")
    return tp.requester_sweep(CommPath.SNIC1, Opcode.READ, 0,
                              FIG11_MACHINES).table(
        "Fig 11 — SNIC1 0 B READ vs requester machines (M reqs/s)")


def _cmd_sweep_plot(args, testbed, tp) -> str:
    if args.figure == "fig4":
        sweeps = {p.label: tp.payload_sweep(p, Opcode.READ, FIG4_PAYLOADS)
                  for p in (CommPath.RNIC1, CommPath.SNIC1, CommPath.SNIC2)}
        return plot_sweeps(sweeps, title="Fig 4 READ throughput (M reqs/s)",
                           y_label="M/s")
    if args.figure == "fig7":
        sweeps = {op.value: tp.range_sweep(CommPath.SNIC2, op, 64,
                                           FIG7_RANGES, requesters=2)
                  for op in (Opcode.READ, Opcode.WRITE)}
        return plot_sweeps(sweeps, title="Fig 7 SoC range sweep (M reqs/s)",
                           y_label="M/s")
    if args.figure == "fig8":
        sweeps = {p.label: tp.payload_sweep(p, Opcode.READ, FIG8_PAYLOADS,
                                            metric="gbps")
                  for p in (CommPath.SNIC1, CommPath.SNIC2)}
        return plot_sweeps(sweeps, title="Fig 8 large READs (Gbps)",
                           y_label="Gbps")
    if args.figure == "fig9":
        sweeps = {"S2H": tp.payload_sweep(CommPath.SNIC3_S2H, Opcode.WRITE,
                                          FIG9_PAYLOADS, requesters=8,
                                          metric="gbps"),
                  "H2S": tp.payload_sweep(CommPath.SNIC3_H2S, Opcode.WRITE,
                                          FIG9_PAYLOADS, requesters=24,
                                          metric="gbps")}
        return plot_sweeps(sweeps, title="Fig 9 host<->SoC (Gbps)",
                           y_label="Gbps")
    if args.figure == "fig10":
        sweeps = {"SoC side": tp.doorbell_sweep(CommPath.SNIC3_S2H,
                                                Opcode.READ, 0,
                                                FIG10_BATCHES, requesters=8),
                  "host side": tp.doorbell_sweep(CommPath.SNIC3_H2S,
                                                 Opcode.READ, 0,
                                                 FIG10_BATCHES,
                                                 requesters=24)}
        return plot_sweeps(sweeps, log_x=False,
                           title="Fig 10(b) doorbell batching (M reqs/s)",
                           y_label="M/s")
    sweeps = {p.label: tp.requester_sweep(p, Opcode.READ, 0, FIG11_MACHINES)
              for p in (CommPath.SNIC1, CommPath.SNIC2)}
    return plot_sweeps(sweeps, log_x=False,
                       title="Fig 11 requester scaling (M reqs/s)",
                       y_label="M/s")


def _cmd_advise(args) -> str:
    profile = WorkloadProfile(
        payload=args.payload,
        read_fraction=args.read_fraction,
        two_sided_fraction=args.two_sided_fraction,
        working_set_bytes=args.working_set,
        hot_range_bytes=args.hot_range,
        host_soc_transfer=args.host_soc_transfer,
    )
    plan = Advisor(paper_testbed()).plan(profile)
    lines = [
        f"one-sided traffic  -> {plan.one_sided_path.label}",
        f"two-sided traffic  -> {plan.two_sided_path.label}",
        f"segmentation       -> "
        f"{fmt_size(plan.segment_bytes) if plan.segment_bytes else 'none'}",
        f"doorbell batching  -> SoC side: "
        f"{'on' if plan.doorbell_batching_soc_side else 'off'}, host side: "
        f"{'on' if plan.doorbell_batching_host_side else 'off'}",
        f"path-3 budget      -> {plan.path3_budget_gbps:.0f} Gbps",
        "",
    ]
    for advice in plan.advice:
        lines.append(f"[{advice.ref}] {advice.summary}")
        lines.append(f"    {advice.rationale}")
    return "\n".join(lines)


def _cmd_audit(args) -> str:
    if args.flows_json == "-":
        raw = json.load(sys.stdin)
    else:
        with open(args.flows_json) as handle:
            raw = json.load(handle)
    flows = []
    for item in raw:
        flows.append(Flow(
            path=_path(item["path"]),
            op=_op(item["op"]),
            payload=int(item["payload"]),
            requesters=int(item.get("requesters", 11)),
            range_bytes=float(item.get("range_bytes", 10 * GB)),
            doorbell_batch=int(item.get("doorbell_batch", 1)),
            weight=float(item.get("weight", 1.0)),
            label=item.get("label", ""),
        ))
    report = detect_all(paper_testbed(), flows)
    if report.clean:
        return "no anomalies detected"
    rows = [[a.kind, a.flow.label if a.flow else "(workload)",
             f"{a.severity:.0%}", a.advice] for a in report]
    return format_table(["anomaly", "flow", "vs healthy", "remedy"], rows,
                        title=f"{len(report)} anomalies")


def _cmd_faults(args) -> str:
    from repro.faults import FaultPlan
    from repro.faults.bench import faulted_sweep, run_fault_bench

    if args.fault_plan is not None:
        plan = FaultPlan.from_file(args.fault_plan)
        rows = [run_fault_bench(ops=args.ops, payload=args.payload,
                                op=args.op, plan=plan,
                                fault_seed=args.fault_seed)]
        title = (f"{args.op.upper()} {fmt_size(args.payload)} x{args.ops} "
                 f"under {args.fault_plan}")
    else:
        try:
            rates = [float(r) for r in args.rates.split(",") if r.strip()]
        except ValueError:
            raise ValueError(f"cannot parse --rates: {args.rates!r}")
        rows = faulted_sweep(rates=rates, ops=args.ops, payload=args.payload,
                             op=args.op, fault_seed=args.fault_seed)
        title = (f"{args.op.upper()} {fmt_size(args.payload)} x{args.ops} "
                 f"vs loss rate")
    if args.json:
        return json.dumps(rows, indent=2)
    table = []
    for row in rows:
        table.append([
            f"{row.get('loss_rate', 0.0):.2%}" if "loss_rate" in row
            else "(plan)",
            f"{row['completed']}/{row['ops']}",
            f"{row['goodput_gbps']:.2f}",
            f"{row['p50_ns']:.0f}",
            f"{row['p99_ns']:.0f}",
            f"{row['faults_injected']:.0f}",
            f"{row['retransmits']:.0f}",
            f"{row['qp_recoveries']:.0f}",
        ])
    return format_table(
        ["loss", "completed", "Gbps", "p50 ns", "p99 ns", "injected",
         "retransmits", "recoveries"],
        table, title=title)


def _cmd_trace(args) -> str:
    from repro.trace import (attribution_report, chrome_trace_json,
                             run_traced_verbs, span_tree_text,
                             write_chrome_trace)

    tracer = run_traced_verbs(args.path, args.verb, args.size,
                              count=args.count, seed=args.seed,
                              telemetry=args.telemetry)
    parts = []
    if args.out:
        write_chrome_trace(tracer.traces, args.out)
        parts.append(f"wrote {len(tracer)} traced verb(s) to {args.out} "
                     "(open in chrome://tracing or https://ui.perfetto.dev)")
    if args.tree:
        parts.extend(span_tree_text(t.root) for t in tracer.traces)
    if args.report:
        parts.append(attribution_report(tracer.traces))
    if args.telemetry and (args.tree or args.report):
        last = tracer.last()
        lines = ["counter deltas (last verb)"]
        lines += [f"  {key}: {value:g}"
                  for key, value in sorted((last.counters or {}).items())]
        parts.append("\n".join(lines))
    if not parts:
        parts.append(chrome_trace_json(tracer.traces))
    return "\n\n".join(parts)


def _cmd_trace_gen(args) -> str:
    import random

    from repro.hw.memory.address import AddressRegion
    from repro.workloads import OpMix, RequestStream, UniformPattern
    from repro.workloads.traces import Trace

    if args.count < 1:
        raise ValueError("count must be >= 1")
    mix = OpMix(read=args.read_fraction, write=1.0 - args.read_fraction,
                send=0.0)
    pattern = UniformPattern(AddressRegion(0, args.region), args.payload,
                             rng=random.Random(args.seed))
    stream = RequestStream(mix, pattern, seed=args.seed)
    trace = Trace.generate(stream, args.path, args.count)
    with open(args.out, "w") as handle:
        trace.dump(handle)
    return (f"wrote {len(trace)} requests ({args.path.label}, "
            f"{args.read_fraction:.0%} reads) to {args.out}")


def _cmd_trace_solve(args) -> str:
    from repro.workloads.traces import Trace

    with open(args.trace) as handle:
        trace = Trace.load(handle)
    flows = trace.as_flows(requesters=args.requesters)
    result = ThroughputSolver().solve(Scenario(paper_testbed(), flows))
    rows = []
    for i, flow in enumerate(flows):
        rows.append([flow.label, f"{result.mrps_of(i):.1f}",
                     f"{result.gbps_of(i):.1f}", result.bottlenecks[i]])
    rows.append(["TOTAL", f"{result.total_mrps:.1f}",
                 f"{result.total_gbps:.1f}", ""])
    return format_table(["flow", "M reqs/s", "Gbps", "bottleneck"], rows,
                        title=f"{len(trace)} traced requests, aggregated")


def _cmd_serve_cluster(args) -> str:
    from repro.cluster import run_cluster
    from repro.units import fmt_ns

    report = run_cluster(args.cluster, jobs=args.jobs,
                         machines=args.machines,
                         population_seed=args.population_seed,
                         placement=args.placement,
                         migrate=False if args.no_migrate else None,
                         engine=(args.engine if args.engine != "event"
                                 else None))
    parts = [report.summary()]
    sched = {key: value for key, value in sorted(report.counters.items())
             if key.startswith("clustersched.")}
    if sched:
        parts.append(
            "cluster scheduler: "
            f"{sched.get('clustersched.offloads', 0):.0f} offloads, "
            f"{sched.get('clustersched.retargets', 0):.0f} retargets, "
            f"{sched.get('clustersched.returns', 0):.0f} returns, "
            f"{sched.get('clustersched.machine_down', 0):.0f} machine "
            "crashes seen")
    if args.decisions and report.cluster_decisions:
        lines = ["cluster decisions"]
        for d in report.cluster_decisions:
            target = f" -> {d.target}" if d.target else ""
            lines.append(f"  {fmt_ns(d.time_ns):>9}  {d.kind:<12} "
                         f"{d.tenant or d.machine:<10}{target}  "
                         f"[{d.reason}]")
        parts.append("\n".join(lines))
    if args.check:
        from repro.stats.invariants import check_report, violations

        results = check_report(report)
        failed = violations(results)
        checked = sorted({r.name for r in results})
        parts.append(f"invariants: {len(results)} checks over "
                     f"{', '.join(checked)} — "
                     f"{'all ok' if not failed else 'VIOLATIONS'}")
        if failed:
            parts.extend(str(r) for r in failed)
            raise SystemExit("\n\n".join(parts))
    if args.json:
        rows = [vars(t) for t in report.tenants.values()]
        return json.dumps({"scenario": report.scenario,
                           "elapsed_ns": report.elapsed_ns,
                           "total_users": report.total_users,
                           "machines": [m.to_dict() for m in report.machines],
                           "placement": report.placement,
                           "slo_attainment": report.slo_attainment,
                           "total_slo_goodput_gbps":
                               report.total_slo_goodput_gbps,
                           "cluster_decisions":
                               [d.as_tuple() for d in report.cluster_decisions],
                           "tenants": rows}, indent=2)
    return "\n\n".join(parts)


def _cmd_serve(args) -> str:
    from repro.faults import FaultPlan
    from repro.sched import mixed_tenant_workload, run_serve
    from repro.units import fmt_ns

    if args.cluster is not None:
        return _cmd_serve_cluster(args)
    for flag in ("machines", "population_seed", "placement"):
        if getattr(args, flag) is not None:
            raise ValueError(
                f"--{flag.replace('_', '-')} needs --cluster")
    if args.no_migrate or args.check:
        raise ValueError("--no-migrate/--check need --cluster")
    plan = (FaultPlan.from_file(args.fault_plan)
            if args.fault_plan is not None else None)
    tenants = mixed_tenant_workload(duration_ns=args.duration,
                                    seed=args.seed)
    if args.shards > 1:
        from dataclasses import replace

        from repro.sim.shard import ShardPlan, ShardSpec, run_sharded
        from repro.sim.xshard import CrossTraffic

        base = ShardPlan.partition(tenants, args.shards)
        names = [s.name for s in base.shards]
        shards = []
        for i, shard in enumerate(base.shards):
            exports = ()
            if args.cross_traffic and len(names) > 1:
                # Bulk tenants ship completions to the next machine.
                nxt = names[(i + 1) % len(names)]
                exports = tuple(
                    CrossTraffic(t.name, nxt, "bulk")
                    for t in shard.tenants if t.bulk)
            faults = plan if i == 0 else None
            shards.append(replace(shard, faults=faults,
                                  fault_seed=args.fault_seed,
                                  exports=exports))
        cluster_faults = (FaultPlan.from_file(args.cluster_fault_plan)
                          if args.cluster_fault_plan is not None else None)
        supervisor = None
        if (args.checkpoint_dir or args.resume or args.kill_shard
                or args.incident_report):
            from repro.sim.supervise import SupervisorConfig

            supervisor = SupervisorConfig(
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                kill_shard=args.kill_shard,
                kill_window=args.kill_window if args.kill_shard else 0,
                incident_report=args.incident_report)
        report = run_sharded(
            ShardPlan(shards=tuple(shards), cluster_faults=cluster_faults),
            jobs=args.jobs, supervisor=supervisor,
            adaptive=not args.static, engine=args.engine)
    else:
        for flag in ("cluster_fault_plan", "checkpoint_dir", "kill_shard",
                     "incident_report"):
            if getattr(args, flag):
                raise ValueError(
                    f"--{flag.replace('_', '-')} needs --shards > 1")
        report = run_serve(tenants, adaptive=not args.static, faults=plan,
                           fault_seed=args.fault_seed, engine=args.engine)
    xshard = {key: value for key, value in sorted(report.counters.items())
              if key.startswith("xshard.")}
    if args.json:
        rows = [vars(t) for t in report.tenants.values()]
        return json.dumps({"adaptive": report.adaptive,
                           "elapsed_ns": report.elapsed_ns,
                           "engine": report.engine,
                           "hybrid_stats": report.hybrid_stats,
                           "tenants": rows,
                           "path_gbps": report.path_gbps,
                           "counters": xshard}, indent=2)
    parts = [report.table()]
    gbps = ", ".join(f"{path}: {rate:.1f}"
                     for path, rate in sorted(report.path_gbps.items()))
    parts.append(f"steady-state Gbps per path: {gbps}")
    if xshard:
        mean_rtt = (xshard.get("xshard.rtt_ns_total", 0)
                    / max(1, xshard.get("xshard.acked", 0)))
        parts.append(
            "cross-shard fabric: "
            f"{xshard.get('xshard.sent', 0)} sent, "
            f"{xshard.get('xshard.served', 0)} served remotely, "
            f"{xshard.get('xshard.relay_requests', 0)} failover relays, "
            f"mean rtt {fmt_ns(mean_rtt)}")
    cluster = {key: value for key, value in sorted(report.counters.items())
               if key.startswith(("cluster.", "supervisor."))}
    if cluster:
        parts.append(
            "cluster chaos: "
            f"{cluster.get('cluster.dropped', 0):.0f} dropped "
            f"(crash {cluster.get('cluster.dropped_crash', 0):.0f}, "
            f"partition {cluster.get('cluster.dropped_partition', 0):.0f}, "
            f"loss {cluster.get('cluster.dropped_loss', 0):.0f}), "
            f"{cluster.get('cluster.delayed', 0):.0f} delayed, "
            f"{cluster.get('cluster.reordered', 0):.0f} reordered, "
            f"{cluster.get('supervisor.respawns', 0):.0f} respawns")
    if report.hybrid_stats is not None:
        stats = ", ".join(f"{key}: {value}"
                          for key, value in sorted(
                              report.hybrid_stats.items()))
        parts.append(f"hybrid engine: {stats}")
    if args.decisions:
        lines = ["scheduler decisions"]
        for d in report.decisions:
            lines.append(
                f"  {fmt_ns(d.time_ns):>9}  {d.kind:<9} {d.tenant:<8} "
                f"-> {d.to_path.value}/{d.to_responder}  [{d.reason}]")
        parts.append("\n".join(lines))
    return "\n\n".join(parts)


def _cmd_crosscheck(args) -> str:
    from repro.sim.crosscheck import cluster_crosscheck, crosscheck_suite

    scenarios = args.scenarios
    run_cluster = scenarios is None or "cluster-fault" in scenarios
    if scenarios is not None:
        scenarios = [name for name in scenarios if name != "cluster-fault"]
    results = ()
    if scenarios is None or scenarios:
        results = crosscheck_suite(duration_ns=args.duration,
                                   seed=args.seed, scenarios=scenarios)
    cluster = cluster_crosscheck(seed=args.seed) if run_cluster else None
    if args.json:
        rows = [{
            "scenario": r.scenario,
            "ok": r.ok,
            "speedup": r.speedup,
            "decisions_ok": r.decisions_ok,
            "decision_p99_err": r.decision_p99_err,
            "hybrid_stats": r.hybrid_stats,
            "failures": list(r.failures()),
            "tenants": [vars(t) for t in r.tenants],
        } for r in results]
        if cluster is not None:
            rows.append({
                "scenario": cluster.scenario,
                "ok": cluster.ok,
                "clauses": [{"name": name, "ok": ok, "detail": detail}
                            for name, ok, detail in cluster.clauses],
                "failures": list(cluster.failures()),
            })
        return json.dumps(rows, indent=2)
    rows = []
    for r in results:
        rows.append([
            r.scenario,
            "PASS" if r.ok else "FAIL",
            f"{r.speedup:.1f}x",
            "exact" if all(t.counts_ok for t in r.tenants) else "DIFFER",
            "exact" if r.decisions_ok else "DIFFER",
            f"{max((t.p99_err for t in r.tenants), default=0.0):.0%}",
            f"{max((t.goodput_err for t in r.tenants), default=0.0):.0%}",
            str(r.hybrid_stats.get("flips", 0)),
        ])
    parts = []
    if rows:
        parts.append(format_table(
            ["scenario", "verdict", "speedup", "counts", "decisions",
             "max p99 err", "max gput err", "flips"],
            rows, title="hybrid engine vs pure DES "
                        f"({args.duration:.0f} ns, seed {args.seed})"))
    if cluster is not None:
        parts.append(format_table(
            ["clause", "verdict", "detail"],
            [[name, "PASS" if ok else "FAIL", detail]
             for name, ok, detail in cluster.clauses],
            title=f"cluster-chaos determinism (seed {args.seed})"))
    table = "\n\n".join(parts)
    failed = [r for r in results if not r.ok]
    if cluster is not None and not cluster.ok:
        failed.append(cluster)
    if failed:
        details = "; ".join(
            f"{r.scenario}: {', '.join(r.failures())}" for r in failed)
        print(table)
        raise ValueError(f"crosscheck failed — {details}")
    return table


def _cmd_validate(args) -> str:
    from repro.stats.validate import run_validation

    report = run_validation(families=args.families, seeds=args.seeds,
                            duration_ns=args.duration, jobs=args.jobs)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.to_markdown())
    output = report.to_json() if args.json else report.table()
    if not report.ok:
        details = "; ".join(f"{row.family}/{row.check}: {row.detail}"
                            for row in report.failures())
        print(output)
        raise ValueError(f"validation failed — {details}")
    if args.check and not report.rows:
        raise ValueError("validation ran no checks — empty family "
                         "selection cannot gate CI")
    return output


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "paths": _cmd_paths,
        "latency": _cmd_latency,
        "throughput": _cmd_throughput,
        "sweep": _cmd_sweep,
        "compare": _cmd_compare,
        "advise": _cmd_advise,
        "audit": _cmd_audit,
        "faults": _cmd_faults,
        "trace": _cmd_trace,
        "trace-gen": _cmd_trace_gen,
        "trace-solve": _cmd_trace_solve,
        "serve": _cmd_serve,
        "crosscheck": _cmd_crosscheck,
        "validate": _cmd_validate,
    }
    try:
        print(handlers[args.command](args))
    except (ValueError, OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
