"""Typed fault specifications and the plans that group them.

A :class:`FaultPlan` is a declarative, serializable description of every
fault a run should experience: i.i.d. packet/TLP loss on a named link
(optionally windowed), hard link-down windows, periodic link flapping,
per-node CPU stalls, and SoC crashes.  Plans are data — installing one
is :meth:`repro.net.cluster.SimCluster.install_faults`'s job — and an
empty plan installs nothing, so fault-free runs pay nothing.

Link targets are channel names: ``net.client0``/``net.server0`` for
fabric links, ``pcie0``/``pcie1`` for server 0's SmartNIC-internal PCIe
links.  All times are simulated nanoseconds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union


def _window_active(now: float, start: float, end: Optional[float]) -> bool:
    return now >= start and (end is None or now < end)


@dataclass(frozen=True)
class PacketLoss:
    """Drop each message on ``target`` i.i.d. with ``rate`` while active."""

    target: str
    rate: float
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1]: {self.rate}")

    def active(self, now: float) -> bool:
        return _window_active(now, self.start, self.end)


@dataclass(frozen=True)
class LinkDown:
    """``target`` drops everything submitted in [start, end)."""

    target: str
    start: float = 0.0
    end: Optional[float] = None

    def active(self, now: float) -> bool:
        return _window_active(now, self.start, self.end)


@dataclass(frozen=True)
class LinkFlap:
    """``target`` cycles down/up: down for ``down_fraction`` of each
    ``period``, starting with the down phase at ``start``."""

    target: str
    period: float
    down_fraction: float = 0.5
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError(f"flap period must be positive: {self.period}")
        if not 0.0 < self.down_fraction < 1.0:
            raise ValueError(
                f"down_fraction must be in (0, 1): {self.down_fraction}")

    def active(self, now: float) -> bool:
        if not _window_active(now, self.start, self.end):
            return False
        phase = (now - self.start) % self.period
        return phase < self.down_fraction * self.period


@dataclass(frozen=True)
class NodeStall:
    """Multiply ``node``'s verb-posting latency by ``factor`` while active."""

    node: str
    factor: float
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self):
        if self.factor < 1.0:
            raise ValueError(f"stall factor must be >= 1: {self.factor}")

    def active(self, now: float) -> bool:
        return _window_active(now, self.start, self.end)


@dataclass(frozen=True)
class SocCrash:
    """``server``'s SoC dies at ``at`` (optionally revives at
    ``recover_at``): its QPs error out and inbound traffic is lost."""

    server: str = "server0"
    at: float = 0.0
    recover_at: Optional[float] = None

    def __post_init__(self):
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError("recover_at must be after the crash")


# -- cluster-scope faults -----------------------------------------------------
#
# These describe failures of whole machines and of the cross-shard
# fabric between them.  They are *not* installable on a single-machine
# SimCluster — they belong in :attr:`repro.sim.shard.ShardPlan.
# cluster_faults` and are interpreted by
# :class:`repro.faults.cluster.ClusterInjector`.


@dataclass(frozen=True)
class MachineCrash:
    """The whole machine hosting ``shard`` dies at ``at``: SoC and host
    down, fabric messages to and from it dropped, until ``recover_at``
    (never, when ``None``)."""

    shard: str
    at: float = 0.0
    recover_at: Optional[float] = None

    def __post_init__(self):
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError("recover_at must be after the crash")

    def active(self, now: float) -> bool:
        return _window_active(now, self.at, self.recover_at)


@dataclass(frozen=True)
class FabricPartition:
    """Shards ``a`` and ``b`` cannot exchange fabric messages in
    [start, end): everything sent between them is dropped."""

    a: str
    b: str
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self):
        if self.a == self.b:
            raise ValueError(f"partition needs two distinct shards: {self.a}")

    def active(self, now: float) -> bool:
        return _window_active(now, self.start, self.end)

    def severs(self, src: str, dst: str) -> bool:
        return {src, dst} == {self.a, self.b}


@dataclass(frozen=True)
class FabricLoss:
    """Drop each fabric message on ``src``→``dst`` i.i.d. with ``rate``
    while active.  ``"*"`` matches any shard."""

    rate: float
    src: str = "*"
    dst: str = "*"
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1]: {self.rate}")

    def active(self, now: float) -> bool:
        return _window_active(now, self.start, self.end)

    def matches(self, src: str, dst: str) -> bool:
        return (self.src in ("*", src)) and (self.dst in ("*", dst))


@dataclass(frozen=True)
class FabricDelay:
    """Add ``extra_ns`` to the delivery time of each matching fabric
    message sent while active.  ``"*"`` matches any shard."""

    extra_ns: float
    src: str = "*"
    dst: str = "*"
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self):
        if self.extra_ns <= 0:
            raise ValueError(f"extra delay must be positive: {self.extra_ns}")

    def active(self, now: float) -> bool:
        return _window_active(now, self.start, self.end)

    def matches(self, src: str, dst: str) -> bool:
        return (self.src in ("*", src)) and (self.dst in ("*", dst))


@dataclass(frozen=True)
class FabricReorder:
    """Shuffle the delivery order of fabric messages bound for ``dst``
    within each lockstep window while active (delivery stays inside the
    window, so the one-window guarantee holds).  ``"*"`` matches any
    shard."""

    dst: str = "*"
    start: float = 0.0
    end: Optional[float] = None

    def active(self, now: float) -> bool:
        return _window_active(now, self.start, self.end)

    def matches(self, dst: str) -> bool:
        return self.dst in ("*", dst)


Fault = Union[PacketLoss, LinkDown, LinkFlap, NodeStall, SocCrash,
              MachineCrash, FabricPartition, FabricLoss, FabricDelay,
              FabricReorder]

#: Cluster-scope fault types — only valid inside ``ShardPlan.cluster_faults``.
CLUSTER_FAULTS = (MachineCrash, FabricPartition, FabricLoss, FabricDelay,
                  FabricReorder)

_KINDS = {
    "packet-loss": PacketLoss,
    "link-down": LinkDown,
    "link-flap": LinkFlap,
    "stall": NodeStall,
    "soc-crash": SocCrash,
    "machine-crash": MachineCrash,
    "fabric-partition": FabricPartition,
    "fabric-loss": FabricLoss,
    "fabric-delay": FabricDelay,
    "fabric-reorder": FabricReorder,
}
_KIND_OF = {cls: kind for kind, cls in _KINDS.items()}


def is_cluster_fault(fault: Fault) -> bool:
    """Whether ``fault`` targets the cluster (machines/fabric) rather
    than one machine's internal links and nodes."""
    return isinstance(fault, CLUSTER_FAULTS)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of faults plus the seed of the injector's RNG.

    The injector draws from its own :class:`~repro.sim.RandomStreams`
    family keyed by ``seed`` — never from the simulation's streams — so
    a plan can be added to any run without perturbing its random draws.
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    @property
    def empty(self) -> bool:
        return not self.faults

    @classmethod
    def packet_loss(cls, target: str, rate: float, seed: int = 0,
                    start: float = 0.0,
                    end: Optional[float] = None) -> "FaultPlan":
        """The common single-fault plan: uniform loss on one link."""
        if rate == 0.0:
            return cls(seed=seed)
        return cls(faults=(PacketLoss(target, rate, start, end),), seed=seed)

    # -- (de)serialization --------------------------------------------------------

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        faults = []
        for spec in raw.get("faults", ()):
            spec = dict(spec)
            kind = spec.pop("kind", None)
            if kind not in _KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; "
                    f"expected one of {sorted(_KINDS)}")
            faults.append(_KINDS[kind](**spec))
        return cls(faults=tuple(faults), seed=int(raw.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def to_dict(self) -> dict:
        out = {"seed": self.seed, "faults": []}
        for fault in self.faults:
            spec = {"kind": _KIND_OF[type(fault)]}
            spec.update(fault.__dict__)
            out["faults"].append(spec)
        return out

    def with_faults(self, *faults: Fault) -> "FaultPlan":
        return FaultPlan(faults=self.faults + tuple(faults), seed=self.seed)
