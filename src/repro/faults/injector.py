"""The fault injector: arms a :class:`~repro.faults.plan.FaultPlan`
against a live :class:`~repro.net.cluster.SimCluster`.

Injection happens at the link layer by wrapping ``send`` on exactly the
targeted channel *instances*: a dropped transfer still occupies the wire
(the real delivery event is submitted and simply ignored) and the caller
instead receives an event resolving to :data:`~repro.sim.LOST` at the
moment the delivery would have happened.  Untargeted channels, and every
channel under an empty plan, are left completely untouched — fault-free
runs execute bit-identically to runs without an injector.

Drop decisions come from the injector's own seeded
:class:`~repro.sim.RandomStreams` family (one substream per channel), so
installing a plan never perturbs the simulation's random draws.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.faults.plan import (FaultPlan, LinkDown, LinkFlap, NodeStall,
                               PacketLoss, SocCrash, is_cluster_fault)
from repro.sim.events import Event
from repro.sim.links import DuplexChannel, LOST
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.cluster import Node, SimCluster


class FaultInjector:
    """Installs a plan's faults; owns all fault-time randomness."""

    def __init__(self, cluster: "SimCluster", plan: FaultPlan,
                 seed: Optional[int] = None):
        self.cluster = cluster
        self.plan = plan
        self.seed = plan.seed if seed is None else seed
        self.streams = RandomStreams(self.seed).fork("faults")
        self.injected = 0
        self._wrapped: List[tuple] = []
        self._stalls: List[NodeStall] = []
        self._installed = False

    # -- wiring --------------------------------------------------------------------

    def _channels_by_name(self) -> Dict[str, DuplexChannel]:
        cluster = self.cluster
        channels: Dict[str, DuplexChannel] = {}
        for server in cluster.servers.values():
            channels[f"net.{server.name}"] = server.channel
        for node in cluster.clients():
            channels[f"net.{node.name}"] = cluster.channel(node)
        snic = cluster.snic
        if snic is not None:
            channels["pcie0"] = snic.pcie0.channel
            channels["pcie1"] = snic.pcie1.channel
        elif cluster.rnic is not None:
            channels["pcie0"] = cluster.rnic.host_link.channel
        return channels

    def install(self) -> None:
        """Arm the plan.  A no-op (nothing touched) for an empty plan."""
        if self._installed:
            raise RuntimeError("fault injector already installed")
        self._installed = True
        if self.plan.empty:
            return
        self.cluster.fault_injector = self
        channels = self._channels_by_name()
        drops: Dict[str, list] = {}
        for fault in self.plan.faults:
            if isinstance(fault, (PacketLoss, LinkDown, LinkFlap)):
                if fault.target not in channels:
                    raise ValueError(
                        f"unknown fault target {fault.target!r}; "
                        f"known links: {sorted(channels)}")
                drops.setdefault(fault.target, []).append(fault)
            elif isinstance(fault, NodeStall):
                self.cluster.node(fault.node)  # validate early
                self._stalls.append(fault)
            elif isinstance(fault, SocCrash):
                self._soc_node(fault.server)  # validate at install time
                self.cluster.sim.process(self._crash_process(fault))
            elif is_cluster_fault(fault):
                raise ValueError(
                    f"{type(fault).__name__} is a cluster-scope fault; "
                    f"put it in ShardPlan.cluster_faults, not a "
                    f"single-machine plan")
        for target, faults in drops.items():
            self._wrap_channel(channels[target], faults)

    def uninstall(self) -> None:
        """Restore every wrapped channel (the crash processes, if any,
        have either run or die with the simulation)."""
        for channel, original in self._wrapped:
            channel.send = original
        self._wrapped.clear()
        if self.cluster.fault_injector is self:
            self.cluster.fault_injector = None

    # -- link faults ---------------------------------------------------------------

    def _wrap_channel(self, channel: DuplexChannel, faults: list) -> None:
        original = channel.send
        rng = self.streams.stream(f"drop:{channel.name}")
        sim = self.cluster.sim
        cluster = self.cluster

        def should_drop(now: float) -> bool:
            for fault in faults:
                if isinstance(fault, PacketLoss):
                    if fault.active(now) and rng.random() < fault.rate:
                        return True
                elif fault.active(now):
                    return True
            return False

        def faulty_send(nbytes: float, forward: bool = True) -> Event:
            delivery = original(nbytes, forward=forward)
            if not should_drop(sim.now):
                return delivery
            # The bytes still occupied the wire; only the delivery is
            # poisoned.  The real event fires unobserved.
            self.injected += 1
            cluster.bump("faults.injected")
            simplex = channel.fwd if forward else channel.rev
            lost = Event(sim)
            lost.succeed(LOST, delay=simplex.last_delivery_delay())
            return lost

        channel.send = faulty_send
        self._wrapped.append((channel, original))

    # -- CPU stalls ----------------------------------------------------------------

    def cpu_factor(self, node: "Node", now: float) -> float:
        """The posting-latency multiplier for ``node`` at ``now``."""
        factor = 1.0
        for fault in self._stalls:
            if fault.node == node.name and fault.active(now):
                factor *= fault.factor
        return factor

    # -- SoC crashes ---------------------------------------------------------------

    def _soc_node(self, server: str) -> "Node":
        for node in self.cluster.nodes.values():
            if node.kind == "soc" and node.server == server:
                return node
        raise ValueError(f"server {server!r} has no SoC node to crash")

    def _crash_process(self, fault: SocCrash):
        from repro.rdma.qp import QPState

        sim = self.cluster.sim
        node = self._soc_node(fault.server)  # validate before the delay
        if fault.at > sim.now:
            yield sim.timeout(fault.at - sim.now)
        node.crashed = True
        self.injected += 1
        self.cluster.bump("faults.injected")
        self.cluster.bump("faults.soc_crashes")
        # Every QP owned by the dead complex errors out; in-flight and
        # future posts on them flush.
        for qp in self.cluster.qps_on(node):
            if qp.state is not QPState.ERROR:
                qp.modify_qp(QPState.ERROR)
        if fault.recover_at is not None:
            yield sim.timeout(fault.recover_at - sim.now)
            node.crashed = False
            self.cluster.bump("faults.soc_recoveries")
