"""Goodput/latency benchmark under injected faults.

Runs a closed-loop RC verb workload (one client against server 0's
host) with a fault plan armed, recovering the QP whenever retry
exhaustion wedges it, and reports goodput, latency percentiles and the
reliability counters.  This is the engine behind ``repro faults`` and
the ``faulted_sweep`` section of the benchmark trajectory.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma.qp import QPState
from repro.rdma.verbs import RdmaContext
from repro.sim.monitor import Histogram
from repro.units import to_gbps


def run_fault_bench(ops: int = 200, payload: int = 4096, op: str = "write",
                    rate: float = 0.0, plan: Optional[FaultPlan] = None,
                    fault_seed: int = 0, nic: str = "snic",
                    target: str = "host") -> dict:
    """Closed-loop RC ``op`` stream under ``plan`` (or uniform ``rate``
    loss on the client's link); returns goodput/latency/counters."""
    if op not in ("read", "write"):
        raise ValueError(f"op must be read or write: {op!r}")
    if ops < 1:
        raise ValueError(f"need at least one op: {ops}")
    cluster = SimCluster(paper_testbed(), n_clients=1, nic=nic)
    if plan is None:
        plan = FaultPlan.packet_loss("net.client0", rate, seed=fault_seed)
    injector = cluster.install_faults(plan, seed=fault_seed)
    ctx = RdmaContext(cluster)
    local = ctx.reg_mr("client0", payload)
    local.write_local(0, bytes(min(payload, 1 << 16)))
    remote = ctx.reg_mr(target, payload)
    qp, _ = ctx.connect_rc("client0", target)
    sim = cluster.sim

    latency = Histogram()
    completed = failed = 0

    def driver():
        nonlocal completed, failed
        for i in range(ops):
            if qp.state is QPState.ERROR:
                qp.recover()
            start = sim.now
            if op == "read":
                work = qp.post_read(i, local, remote, payload)
            else:
                work = qp.post_write(i, local, remote, payload)
            yield work
            for completion in qp.send_cq.poll():
                if completion.ok:
                    completed += 1
                    latency.record(sim.now - start)
                else:
                    failed += 1

    sim.process(driver())
    sim.run()
    elapsed = sim.now
    stats = cluster.stats
    return {
        "op": op,
        "payload_bytes": payload,
        "ops": ops,
        "completed": completed,
        "failed": failed,
        "goodput_gbps": (to_gbps(completed * payload / elapsed)
                         if elapsed > 0 else 0.0),
        "p50_ns": latency.p50,
        "p99_ns": latency.p99,
        "elapsed_ns": elapsed,
        "faults_injected": injector.injected,
        "retransmits": stats.get("rdma.retransmits", 0.0),
        "rnr_naks": stats.get("rdma.rnr_naks", 0.0),
        "qp_recoveries": stats.get("qp.recoveries", 0.0),
    }


def faulted_sweep(rates=(0.0, 0.001, 0.01), ops: int = 200,
                  payload: int = 4096, op: str = "write",
                  fault_seed: int = 0) -> list:
    """One :func:`run_fault_bench` row per loss rate."""
    rows = []
    for rate in rates:
        row = run_fault_bench(ops=ops, payload=payload, op=op, rate=rate,
                              fault_seed=fault_seed)
        row["loss_rate"] = rate
        rows.append(row)
    return rows
