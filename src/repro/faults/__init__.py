"""Deterministic fault injection for the simulated testbed.

The subsystem is three layers:

* :mod:`repro.faults.plan` — typed, serializable fault specifications
  (:class:`FaultPlan` and friends);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which arms a
  plan against a live cluster by wrapping exactly the targeted link
  instances (pay-as-you-go: an empty plan touches nothing);
* :mod:`repro.faults.cluster` — :class:`ClusterInjector`, which arms
  cluster-scope faults (machine crashes, fabric partition/loss/delay/
  reorder) against a sharded run's cross-shard fabric;
* :mod:`repro.faults.bench` — goodput/latency-under-loss benchmarks.

See ``docs/robustness.md`` for the fault model and the RC reliability
protocol that absorbs these faults.
"""

from repro.faults.cluster import ClusterInjector
from repro.faults.injector import FaultInjector
from repro.faults.plan import (Fault, FaultPlan, FabricDelay, FabricLoss,
                               FabricPartition, FabricReorder, LinkDown,
                               LinkFlap, MachineCrash, NodeStall, PacketLoss,
                               SocCrash, is_cluster_fault)

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "ClusterInjector",
    "PacketLoss",
    "LinkDown",
    "LinkFlap",
    "NodeStall",
    "SocCrash",
    "MachineCrash",
    "FabricPartition",
    "FabricLoss",
    "FabricDelay",
    "FabricReorder",
    "is_cluster_fault",
]
