"""Deterministic fault injection for the simulated testbed.

The subsystem is three layers:

* :mod:`repro.faults.plan` — typed, serializable fault specifications
  (:class:`FaultPlan` and friends);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which arms a
  plan against a live cluster by wrapping exactly the targeted link
  instances (pay-as-you-go: an empty plan touches nothing);
* :mod:`repro.faults.bench` — goodput/latency-under-loss benchmarks.

See ``docs/robustness.md`` for the fault model and the RC reliability
protocol that absorbs these faults.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (Fault, FaultPlan, LinkDown, LinkFlap,
                               NodeStall, PacketLoss, SocCrash)

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "PacketLoss",
    "LinkDown",
    "LinkFlap",
    "NodeStall",
    "SocCrash",
]
