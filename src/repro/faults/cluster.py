"""Cluster-scope chaos: machine crashes and fabric faults for sharded runs.

:class:`ClusterInjector` arms a :class:`~repro.faults.plan.FaultPlan`
made of cluster-scope specs (:class:`MachineCrash`,
:class:`FabricPartition`, :class:`FabricLoss`, :class:`FabricDelay`,
:class:`FabricReorder`) against the cross-shard fabric of a
:class:`~repro.sim.shard.ShardPlan` run.  It plays three roles:

* **liveness oracle** — :meth:`machine_down` answers "is this shard's
  machine dead at time t?" from the plan alone, so shard workers and
  the lockstep parent agree without exchanging any state;
* **plan lowering** — :meth:`local_faults` translates a
  :class:`MachineCrash` into the crashed shard's own single-machine
  fault plan (an SoC crash with matching recovery), so the intra-shard
  consequences ride the PR-3 injector unchanged;
* **fabric mutation** — :meth:`apply_outbox` drops and delays messages
  at routing time in the lockstep parent, and :meth:`shuffle_inbox`
  permutes delivery order within a window.

Every random decision is a pure hash of ``(plan.seed, message
identity)`` — never a stateful RNG draw — so outcomes are independent
of the order messages are examined and ``jobs=N`` stays bit-identical
to ``jobs=1``.  The injector itself is plain picklable data (the plan
plus counters), so shard workers can carry a copy for the oracle.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import (FabricDelay, FabricLoss, FabricPartition,
                               FabricReorder, FaultPlan, MachineCrash,
                               SocCrash, is_cluster_fault)

#: Headroom added to the derived ack-timeout so queueing at the relay
#: never masquerades as a fabric fault.
_TIMEOUT_SLACK_NS = 50_000.0


def _unit(seed: int, *key) -> float:
    """A uniform [0, 1) draw that is a pure function of its key."""
    data = "|".join(str(part) for part in (seed,) + key).encode()
    digest = hashlib.sha256(data).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class ClusterInjector:
    """Deterministic interpreter for a cluster-scope fault plan."""

    def __init__(self, plan: FaultPlan, shards: Sequence[str],
                 topology=None):
        for fault in plan.faults:
            if not is_cluster_fault(fault):
                raise ValueError(
                    f"{type(fault).__name__} is a single-machine fault; "
                    f"it belongs in a ShardSpec's own plan, not "
                    f"cluster_faults")
        known = set(shards)
        self.plan = plan
        self.shards = tuple(shards)
        self.crashes: Dict[str, List[MachineCrash]] = {}
        self.partitions: List[FabricPartition] = []
        self.losses: List[FabricLoss] = []
        self.delays: List[FabricDelay] = []
        self.reorders: List[FabricReorder] = []
        for fault in plan.faults:
            names = ()
            if isinstance(fault, MachineCrash):
                names = (fault.shard,)
                self.crashes.setdefault(fault.shard, []).append(fault)
            elif isinstance(fault, FabricPartition):
                names = (fault.a, fault.b)
                self.partitions.append(fault)
            elif isinstance(fault, FabricLoss):
                names = tuple(n for n in (fault.src, fault.dst) if n != "*")
                self.losses.append(fault)
            elif isinstance(fault, FabricDelay):
                names = tuple(n for n in (fault.src, fault.dst) if n != "*")
                self.delays.append(fault)
            elif isinstance(fault, FabricReorder):
                names = () if fault.dst == "*" else (fault.dst,)
                self.reorders.append(fault)
            for name in names:
                if name not in known:
                    raise ValueError(
                        f"{type(fault).__name__} names unknown shard "
                        f"{name!r}; plan shards: {sorted(known)}")
        self.dropped = 0
        self.dropped_crash = 0
        self.dropped_partition = 0
        self.dropped_loss = 0
        self.dropped_ctl = 0
        self.delayed = 0
        self.reordered = 0
        self._topology = topology

    # -- liveness oracle ----------------------------------------------------------

    def machine_down(self, shard: str, now: float) -> bool:
        """Whether ``shard``'s machine (host + SoC) is dead at ``now``.

        Pure function of the plan and the clock, so the lockstep parent
        and every worker answer identically without coordination.
        """
        return any(crash.active(now) for crash in self.crashes.get(shard, ()))

    def alive_shards(self, now: float) -> Tuple[str, ...]:
        """Shards whose machines are up at ``now``, in plan order."""
        return tuple(s for s in self.shards if not self.machine_down(s, now))

    def machines_lost(self, since: float, until: float) -> Tuple[str, ...]:
        """Shards whose machines died in ``(since, until]``, plan order.

        The cluster scheduler's crash-migration trigger: a machine in
        this set just went from alive to dead, so tenants offloaded
        *to* it must be retargeted and tenants homed *on* it written
        off until recovery.  Pure function of the plan, like every
        oracle here.
        """
        return tuple(s for s in self.shards
                     if not self.machine_down(s, since)
                     and self.machine_down(s, until))

    # -- plan lowering ------------------------------------------------------------

    def local_faults(self, shard: str) -> Tuple[SocCrash, ...]:
        """``shard``'s machine crashes lowered to single-machine faults.

        A whole-machine death shows up inside the shard as an SoC crash
        (QPs error, the path policy fails host-ward) with the same
        recovery schedule; the host side of the death is enforced by
        the runtime's dispatch-time liveness check and the fabric-level
        message drops.
        """
        return tuple(SocCrash(server="server0", at=crash.at,
                              recover_at=crash.recover_at)
                     for crash in self.crashes.get(shard, ()))

    # -- fabric mutation ----------------------------------------------------------

    def fault_timeout_ns(self) -> float:
        """Default ack-timeout for channels under this plan: several
        fabric RTTs plus every configured extra delay plus slack."""
        if self._topology is not None:
            latencies = [self._topology.latency_ns(s, d)
                         for s in self._topology.shards
                         for d in self._topology.shards if s != d]
            worst = max(latencies) if latencies else 0.0
        else:
            worst = 0.0
        extras = sum(delay.extra_ns for delay in self.delays)
        return 4.0 * worst + extras + _TIMEOUT_SLACK_NS

    def apply_outbox(self, messages: Sequence) -> List:
        """Filter one routing batch: drop what the plan kills, delay
        what it slows.  Returns the surviving (possibly rewritten)
        messages in their original order."""
        out = []
        for msg in messages:
            extra = sum(d.extra_ns for d in self.delays
                        if d.active(msg.send_ns)
                        and d.matches(msg.src, msg.dst))
            if extra > 0.0:
                msg = replace(msg, deliver_ns=msg.deliver_ns + extra)
                self.delayed += 1
            if self.machine_down(msg.src, msg.send_ns) \
                    or self.machine_down(msg.dst, msg.deliver_ns):
                self.dropped += 1
                self.dropped_crash += 1
                if getattr(msg, "kind", "") == "ctl":
                    self.dropped_ctl += 1
                continue
            if any(p.active(msg.send_ns) and p.severs(msg.src, msg.dst)
                   for p in self.partitions):
                self.dropped += 1
                self.dropped_partition += 1
                continue
            lost = False
            for loss in self.losses:
                if not (loss.active(msg.send_ns)
                        and loss.matches(msg.src, msg.dst)):
                    continue
                if _unit(self.plan.seed, "loss", msg.src, msg.dst,
                         msg.msg_id, msg.send_ns) < loss.rate:
                    lost = True
                    break
            if lost:
                self.dropped += 1
                self.dropped_loss += 1
                continue
            out.append(msg)
        return out

    def shuffle_inbox(self, shard: str, barrier: float,
                      inbox: List) -> List:
        """Permute delivery times among this window's reorder-matched
        messages for ``shard``.  All rewritten ``deliver_ns`` values
        come from the same batch, so delivery stays within the window
        and the one-window guarantee holds."""
        if not self.reorders or len(inbox) < 2:
            return inbox
        picked = [i for i, msg in enumerate(inbox)
                  if any(r.active(msg.deliver_ns) and r.matches(msg.dst)
                         for r in self.reorders)]
        if len(picked) < 2:
            return inbox
        times = [inbox[i].deliver_ns for i in picked]
        rng = random.Random(int(_unit(self.plan.seed, "reorder", shard,
                                      barrier) * 2.0 ** 53))
        perm = times[:]
        rng.shuffle(perm)
        out = list(inbox)
        for i, deliver_ns in zip(picked, perm):
            if out[i].deliver_ns != deliver_ns:
                self.reordered += 1
            out[i] = replace(out[i], deliver_ns=deliver_ns)
        out.sort(key=lambda m: m.sort_key())
        return out

    # -- reporting ----------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Parent-side counters for the merged report (``cluster.*``)."""
        return {
            "cluster.dropped": self.dropped,
            "cluster.dropped_crash": self.dropped_crash,
            "cluster.dropped_partition": self.dropped_partition,
            "cluster.dropped_loss": self.dropped_loss,
            "cluster.dropped_ctl": self.dropped_ctl,
            "cluster.delayed": self.delayed,
            "cluster.reordered": self.reordered,
        }
