"""Cluster-level scheduling: tenant → machine placement and migration.

Two halves, same Fig-11 vocabulary as the per-machine
:class:`~repro.sched.policy.PathPolicy`:

* **Placement** (:func:`bin_pack_placement` /
  :func:`round_robin_placement`) — before the run, tenants are packed
  onto machines against each machine's *concurrent* per-path budgets
  from :meth:`Advisor.plan <repro.core.advisor.Advisor>`'s analyzer
  (Mrps for client paths, the ``P − N`` Gbps budget for path ③), with
  the device model enforced: RNIC machines take host-terminated client
  tenants only — never bulk shippers.  Round-robin is the static
  baseline the benchmark compares against.

* **Migration** (:class:`ClusterScheduler`) — during the run, the
  lockstep parent hands the scheduler every shard's barrier heartbeat.
  It keeps per-tenant SLO breach streaks from the closed-window
  digests, and when a machine's tenants breach persistently it directs
  one latency-tolerant local tenant to be *served remotely* by the
  least-loaded surviving machine (load-aware: completed-per-window
  deltas, remote-assignment pressure and observed fabric RTT).
  Machine crashes retarget or return remote tenants.  Directives
  travel the fabric as ``ctl`` messages from the LB node, so they are
  window-logged, replay-safe and bit-identical across ``jobs={1,N}``
  — the scheduler is a pure function of the heartbeat sequence.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.cluster.machine import MachineSpec
from repro.core.advisor import Advisor
from repro.core.paths import CommPath, Opcode
from repro.sched.tenant import TenantSpec
from repro.sim.xshard import ShardMessage, ShardTopology
from repro.units import gib_per_s, to_mpps

#: Stand-in for the remote host's CPU dispatch inside the relay-cost
#: estimate (the exact value comes from the testbed at serve time).
_RELAY_CPU_NS = 2_000.0

#: Remote relay copy throughput, mirroring the fabric's host relay.
_RELAY_GIBPS = 16.0


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------


def _tenant_path(spec: TenantSpec, advisor: Advisor,
                 machine: MachineSpec) -> CommPath:
    """The path the tenant would occupy on ``machine``."""
    if spec.bulk:
        return CommPath.SNIC3_H2S
    if not machine.soc:
        return CommPath.SNIC1        # RNIC: host termination only
    plan = advisor.plan(spec.profile())
    return (plan.two_sided_path if spec.mix.send >= 0.5
            else plan.one_sided_path)


class _MachineLoad:
    """Mutable packing state for one machine."""

    __slots__ = ("spec", "mrps", "bulk_gbps", "clients")

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.mrps: Dict[CommPath, float] = {}
        self.bulk_gbps = 0.0
        self.clients = 0

    def assign(self, tenant: TenantSpec, path: CommPath) -> None:
        if tenant.bulk:
            self.bulk_gbps += tenant.offered_gbps
        else:
            self.mrps[path] = (self.mrps.get(path, 0.0)
                               + to_mpps(1.0 / tenant.interval_ns))
            self.clients += 1

    @property
    def total_mrps(self) -> float:
        return sum(self.mrps.values())


def _eligible(tenant: TenantSpec, load: _MachineLoad,
              max_clients: int) -> bool:
    if tenant.bulk:
        return load.spec.soc
    return load.clients < max_clients


def _fits(tenant: TenantSpec, load: _MachineLoad, advisor: Advisor,
          headroom: float) -> bool:
    """Fig-11 admission at cluster scope, mirroring
    :meth:`repro.sched.policy.PathPolicy._fits`."""
    path = _tenant_path(tenant, advisor, load.spec)
    if tenant.bulk:
        budget = advisor.analyzer.path3_budget_gbps()
        if budget <= 0:
            return True
        return load.bulk_gbps + tenant.offered_gbps <= headroom * budget
    op = (Opcode.READ if tenant.mix.read >= tenant.mix.write
          else Opcode.WRITE)
    budgets = advisor.analyzer.concurrent_endpoint_budgets(
        op, payload=tenant.payload)
    budget = budgets.get(path)
    if budget is None or budget <= 0:
        return True
    bound = load.mrps.get(path, 0.0)
    return bound + to_mpps(1.0 / tenant.interval_ns) <= headroom * budget


def _seed_pins(loads: Dict[str, _MachineLoad], advisor: Advisor,
               tenants: Sequence[TenantSpec],
               pinned: Mapping[str, str]) -> Dict[str, str]:
    placement: Dict[str, str] = {}
    by_name = {t.name: t for t in tenants}
    for name in sorted(pinned):
        machine = pinned[name]
        if machine not in loads:
            raise ValueError(f"tenant {name!r} pinned to unknown machine "
                             f"{machine!r}")
        spec = by_name[name]
        load = loads[machine]
        if spec.bulk and not load.spec.soc:
            raise ValueError(f"bulk tenant {name!r} pinned to RNIC "
                             f"machine {machine!r}")
        load.assign(spec, _tenant_path(spec, advisor, load.spec))
        placement[name] = machine
    return placement


def bin_pack_placement(tenants: Sequence[TenantSpec],
                       machines: Sequence[MachineSpec], testbed,
                       headroom: float = 0.9,
                       pinned: Optional[Mapping[str, str]] = None
                       ) -> Dict[str, str]:
    """First-fit-decreasing against per-machine Fig-11 budgets.

    Bulk shippers (the big rocks, SNIC-only) pack first by offered
    Gbps against the ``P − N`` budget; client tenants follow by
    offered Mrps against the concurrent path partitions.  Among
    machines that fit, the least-loaded wins (ties by name).  When
    nothing fits the budgets, the least-loaded *eligible* machine
    takes the overflow — admission control inside the machine will
    shed what the budgets cannot carry.  The hard limits are device
    (no bulk on RNIC) and client capacity (``testbed.n_clients``
    non-bulk tenants per machine).
    """
    if not machines:
        raise ValueError("no machines to place on")
    advisor = Advisor(testbed)
    max_clients = testbed.n_clients
    loads = {m.name: _MachineLoad(m) for m in machines}
    if len(loads) != len(machines):
        raise ValueError(f"duplicate machine names: "
                         f"{[m.name for m in machines]}")
    placement = _seed_pins(loads, advisor, tenants, pinned or {})
    free = [t for t in tenants if t.name not in placement]
    order = (sorted((t for t in free if t.bulk),
                    key=lambda t: (-t.offered_gbps, t.name))
             + sorted((t for t in free if not t.bulk),
                      key=lambda t: (-to_mpps(1.0 / t.interval_ns), t.name)))
    for spec in order:
        eligible = [load for name, load in sorted(loads.items())
                    if _eligible(spec, load, max_clients)]
        if not eligible:
            raise ValueError(
                f"no machine can host tenant {spec.name!r}: "
                f"{'bulk needs an SNIC machine' if spec.bulk else 'client capacity exhausted'}")

        def _score(load: _MachineLoad) -> tuple:
            return (load.total_mrps + load.bulk_gbps / 100.0,
                    load.clients, load.spec.name)

        fitting = [load for load in eligible
                   if _fits(spec, load, advisor, headroom)]
        best = min(fitting or eligible, key=_score)
        best.assign(spec, _tenant_path(spec, advisor, best.spec))
        placement[spec.name] = best.spec.name
    return placement


def round_robin_placement(tenants: Sequence[TenantSpec],
                          machines: Sequence[MachineSpec], testbed,
                          pinned: Optional[Mapping[str, str]] = None
                          ) -> Dict[str, str]:
    """The static baseline: cycle machines in order, budget-blind.

    Only the hard constraints are honored (device eligibility and
    client capacity); everything the bin-packer knows about budgets is
    deliberately ignored.
    """
    if not machines:
        raise ValueError("no machines to place on")
    advisor = Advisor(testbed)
    max_clients = testbed.n_clients
    loads = {m.name: _MachineLoad(m) for m in machines}
    placement = _seed_pins(loads, advisor, tenants, pinned or {})
    ring = [loads[m.name] for m in machines]
    cursor = 0
    for spec in (t for t in tenants if t.name not in placement):
        for hop in range(len(ring)):
            load = ring[(cursor + hop) % len(ring)]
            if _eligible(spec, load, max_clients):
                load.assign(spec, _tenant_path(spec, advisor, load.spec))
                placement[spec.name] = load.spec.name
                cursor = (cursor + hop + 1) % len(ring)
                break
        else:
            raise ValueError(
                f"no machine can host tenant {spec.name!r}: "
                f"{'bulk needs an SNIC machine' if spec.bulk else 'client capacity exhausted'}")
    return placement


# ---------------------------------------------------------------------------
# runtime migration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterDecision:
    """One cluster-level scheduling decision.

    Deliberately *not* a :class:`~repro.sched.policy.Decision`: those
    attribute path moves inside a machine (and require a
    :class:`~repro.core.paths.CommPath`); cluster moves are between
    machines and have none.
    """

    window: int
    time_ns: float
    tenant: str
    kind: str            # offload | retarget | return | machine-down
    machine: str         # the tenant's home machine (or the dead one)
    target: str          # remote serving machine ("" for return/down)
    reason: str

    def as_tuple(self) -> tuple:
        """Hashable, bit-comparable form (the determinism oracle)."""
        return (self.window, self.time_ns, self.tenant, self.kind,
                self.machine, self.target, self.reason)


class ClusterScheduler:
    """Barrier-time migration controller over the machine fabric.

    Driven by :func:`repro.sim.shard.run_sharded` via ``observe`` at
    every closed window.  All state transitions are pure functions of
    the (deterministic) heartbeat sequence, so the scheduler introduces
    no divergence between ``jobs=1`` and ``jobs=N``.

    * ``patience`` — consecutive breaching SLO windows a machine's
      tenant must show before its machine may shed load.
    * ``cooldown_windows`` — sync windows a machine waits between
      offloads (hysteresis against flapping).
    * ``min_samples`` — completions a window needs before its p99 is
      trusted (rejections always count as breaching).
    * ``rtt_slack`` — a tenant is offload-eligible only if its SLO
      deadline exceeds ``rtt_slack ×`` the estimated remote-serve cost
      (two fabric traversals plus the host relay).
    * ``pressure_penalty`` — load-score surcharge per tenant already
      directed at a target machine, so one idle machine does not
      absorb every offload at once.
    """

    def __init__(self, specs: Mapping[str, TenantSpec],
                 home: Mapping[str, str], topology: ShardTopology,
                 injector=None, patience: int = 2,
                 cooldown_windows: int = 6, min_samples: int = 4,
                 rtt_slack: float = 2.0, pressure_penalty: float = 25.0):
        if patience < 1:
            raise ValueError(f"patience must be >= 1: {patience}")
        if cooldown_windows < 1:
            raise ValueError(
                f"cooldown must be >= 1 window: {cooldown_windows}")
        missing = sorted(set(home) - set(specs))
        if missing:
            raise ValueError(f"homed tenants without specs: {missing}")
        self.specs = dict(specs)
        self.home = dict(home)
        self.topology = topology
        self.lb = topology.lb
        self.injector = injector
        self.patience = patience
        self.cooldown_windows = cooldown_windows
        self.min_samples = min_samples
        self.rtt_slack = rtt_slack
        self.pressure_penalty = pressure_penalty
        #: tenant -> machine currently serving it remotely.
        self.remote: Dict[str, str] = {}
        self.decisions: List[ClusterDecision] = []
        self.ctl_sent = 0
        self.offloads = 0
        self.retargets = 0
        self.returns = 0
        self.machine_downs = 0
        self._ids = itertools.count(1)
        self._breach: Dict[str, int] = {}
        self._seen_window: Dict[str, int] = {}
        self._cooldown_until: Dict[str, int] = {}
        self._prev_total: Dict[str, int] = {}
        self._prev_barrier = 0.0

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> str:
        """Joins the run fingerprint: resuming a checkpoint under a
        different scheduler policy must be refused."""
        payload = repr((
            sorted(self.home.items()), self.lb, self.patience,
            self.cooldown_windows, self.min_samples, self.rtt_slack,
            self.pressure_penalty,
        )).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    def counters(self) -> Dict[str, int]:
        return {
            "clustersched.ctl_sent": self.ctl_sent,
            "clustersched.offloads": self.offloads,
            "clustersched.retargets": self.retargets,
            "clustersched.returns": self.returns,
            "clustersched.machine_down": self.machine_downs,
        }

    # -- the per-window tick ------------------------------------------------

    def observe(self, window_no: int, barrier: float,
                heartbeats: Mapping[str, dict],
                done: Mapping[str, bool]) -> List[ShardMessage]:
        """One barrier tick: digest heartbeats, emit ctl directives."""
        machines = sorted(heartbeats)
        if self.injector is not None:
            alive = set(self.injector.alive_shards(barrier)) & set(machines)
            for lost in self.injector.machines_lost(self._prev_barrier,
                                                    barrier):
                self.machine_downs += 1
                self._log(window_no, barrier, "", "machine-down", lost, "",
                          f"machine {lost} crashed")
        else:
            alive = set(machines)
        self._prev_barrier = barrier

        window_load = self._window_load(machines, heartbeats)
        pressure: Dict[str, float] = {m: 0.0 for m in machines}
        for target in self.remote.values():
            if target in pressure:
                pressure[target] += self.pressure_penalty

        messages: List[ShardMessage] = []
        self._retarget_dead(messages, window_no, barrier, machines, alive,
                            window_load, pressure, heartbeats, done)
        self._update_breaches(machines, heartbeats)
        self._offload_hot(messages, window_no, barrier, machines, alive,
                          window_load, pressure, heartbeats, done)
        self.ctl_sent += len(messages)
        return messages

    # -- internals ----------------------------------------------------------

    def _window_load(self, machines: Sequence[str],
                     heartbeats: Mapping[str, dict]) -> Dict[str, float]:
        """Completions each machine absorbed since the last barrier."""
        load: Dict[str, float] = {}
        for machine in machines:
            total = heartbeats[machine].get("load", (0, 0, 0, 0.0))[0]
            load[machine] = float(total - self._prev_total.get(machine, 0))
            self._prev_total[machine] = total
        return load

    def _retarget_dead(self, messages, window_no, barrier, machines, alive,
                       window_load, pressure, heartbeats, done) -> None:
        for tenant in sorted(self.remote):
            target = self.remote[tenant]
            home = self.home[tenant]
            if home not in alive or done.get(home, False):
                continue             # no one left to direct
            if target in alive and not done.get(target, False):
                continue
            fresh = self._pick_target(machines, alive, window_load,
                                      pressure, heartbeats, done,
                                      exclude={home, target})
            if fresh is None:
                self._direct(messages, window_no, barrier, tenant, home,
                             None, "return", f"target {target} unavailable")
            else:
                pressure[fresh] += self.pressure_penalty
                self._direct(messages, window_no, barrier, tenant, home,
                             fresh, "retarget",
                             f"target {target} unavailable")

    def _update_breaches(self, machines, heartbeats) -> None:
        for machine in machines:
            digests = heartbeats[machine].get("windows") or {}
            for tenant in sorted(digests):
                digest = digests[tenant]
                if digest is None:
                    continue
                idx, count, p99_ns, rejected, _violations = digest
                if self._seen_window.get(tenant) == idx:
                    continue         # window already digested
                self._seen_window[tenant] = idx
                spec = self.specs.get(tenant)
                if spec is None:
                    continue
                breaching = (rejected > 0
                             or (count >= self.min_samples
                                 and p99_ns > spec.slo.p99_ns))
                self._breach[tenant] = (self._breach.get(tenant, 0) + 1
                                        if breaching else 0)

    def _offload_hot(self, messages, window_no, barrier, machines, alive,
                     window_load, pressure, heartbeats, done) -> None:
        for machine in machines:
            if machine not in alive or done.get(machine, False):
                continue
            if window_no < self._cooldown_until.get(machine, 0):
                continue
            local = [t for t in sorted(self.home)
                     if self.home[t] == machine and t not in self.remote]
            hot = [t for t in local
                   if self._breach.get(t, 0) >= self.patience]
            if not hot:
                continue
            donor = self._pick_donor(local)
            if donor is None:
                continue
            target = self._pick_target(machines, alive, window_load,
                                       pressure, heartbeats, done,
                                       exclude={machine})
            if target is None:
                continue
            pressure[target] += self.pressure_penalty
            self._direct(messages, window_no, barrier, donor, machine,
                         target, "offload",
                         f"{len(hot)} tenant(s) breaching SLO on {machine}")
            self._cooldown_until[machine] = window_no + self.cooldown_windows

    def _relay_cost_ns(self, spec: TenantSpec) -> float:
        """Estimated remote-serve latency: two fabric traversals plus
        the remote host relay (CPU dispatch + DRAM-speed copy)."""
        return (2.0 * self.topology.link_latency_ns + _RELAY_CPU_NS
                + max(1, spec.payload) / gib_per_s(_RELAY_GIBPS))

    def _pick_donor(self, local: Sequence[str]) -> Optional[str]:
        """The tenant whose departure relieves the machine most, among
        those whose deadline tolerates remote serving."""
        eligible = [t for t in local
                    if self.specs[t].slo.deadline
                    >= self.rtt_slack * self._relay_cost_ns(self.specs[t])]
        if not eligible:
            return None
        return max(eligible,
                   key=lambda t: (self.specs[t].offered_gbps, t))

    def _pick_target(self, machines, alive: Set[str], window_load,
                     pressure, heartbeats, done,
                     exclude: Set[str]) -> Optional[str]:
        """Least-loaded surviving machine: window completions plus
        remote-assignment pressure, fabric RTT as the tiebreak."""
        candidates = [m for m in machines
                      if m in alive and m not in exclude
                      and not done.get(m, False)]
        if not candidates:
            return None

        def _score(machine: str) -> tuple:
            load = heartbeats[machine].get("load", (0, 0, 0, 0.0))
            _total, _served, acked, rtt_total = load
            mean_rtt = rtt_total / acked if acked else 0.0
            return (window_load.get(machine, 0.0) + pressure[machine],
                    mean_rtt, machine)

        return min(candidates, key=_score)

    def _direct(self, messages: List[ShardMessage], window_no: int,
                barrier: float, tenant: str, home: str,
                target: Optional[str], kind: str, reason: str) -> None:
        note = f"serve-on:{target}" if target is not None else "serve-local"
        src = self.lb if self.lb is not None else "cluster"
        try:
            latency = self.topology.latency_ns(src, home)
        except KeyError:
            latency = self.topology.link_latency_ns
        messages.append(ShardMessage(
            src=src, dst=home, kind="ctl", tenant=tenant, nbytes=0,
            send_ns=barrier, deliver_ns=barrier + latency,
            msg_id=next(self._ids), note=note))
        if target is not None:
            self.remote[tenant] = target
        else:
            self.remote.pop(tenant, None)
        if kind == "offload":
            self.offloads += 1
        elif kind == "retarget":
            self.retargets += 1
        elif kind == "return":
            self.returns += 1
        self._log(window_no, barrier, tenant, kind, home, target or "",
                  reason)

    def _log(self, window_no: int, barrier: float, tenant: str, kind: str,
             machine: str, target: str, reason: str) -> None:
        self.decisions.append(ClusterDecision(
            window=window_no, time_ns=barrier, tenant=tenant, kind=kind,
            machine=machine, target=target, reason=reason))
