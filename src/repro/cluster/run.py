"""Compile a :class:`~repro.api.schema.ClusterScenario` and run it.

The pipeline::

    JSON document
      → ClusterScenario          (repro.api.schema — pure description)
      → sample_population        (cohorts → concrete TenantSpecs)
      → bin_pack_placement       (tenants → machines, Fig-11 budgets)
      → ShardPlan + ShardTopology (machines + LB node + fault plan)
      → run_sharded(controller=ClusterScheduler)   (lockstep fabric)
      → ClusterReport            (machine/tenant/decision rollup)

Everything upstream of ``run_sharded`` is deterministic given the
scenario (placement is pure, population sampling is seeded), so a
scenario document *is* the experiment: same JSON, same seed → same
report, bit for bit, at any ``jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.machine import MachineSpec
from repro.cluster.scheduler import (ClusterDecision, ClusterScheduler,
                                     bin_pack_placement,
                                     round_robin_placement)
from repro.core.report import format_table
from repro.faults.cluster import ClusterInjector
from repro.net.topology import paper_testbed
from repro.sched.serve import ServeReport
from repro.sched.tenant import TenantSpec
from repro.sim.shard import ShardPlan, ShardSpec, run_sharded
from repro.sim.xshard import ShardTopology
from repro.units import fmt_ns
from repro.workloads.population import sample_population

_NIC_CYCLE = ("snic", "snic", "snic", "rnic")


@dataclass
class ClusterReport:
    """One rack-scale run: the merged serving report plus the cluster
    view (who ran where, what the scheduler moved, how many users the
    population stood for)."""

    scenario: str
    serve: ServeReport
    machines: Tuple[MachineSpec, ...]
    placement: Dict[str, str]                  # tenant -> home machine
    cluster_decisions: List[ClusterDecision] = field(default_factory=list)
    total_users: int = 0
    users: Dict[str, int] = field(default_factory=dict)  # tenant -> users

    # -- delegation to the merged ServeReport -------------------------------

    @property
    def tenants(self):
        return self.serve.tenants

    @property
    def decisions(self):
        return self.serve.decisions

    @property
    def counters(self):
        return self.serve.counters

    @property
    def windows(self):
        return self.serve.windows

    @property
    def conservation(self):
        return self.serve.conservation

    @property
    def path_gbps(self):
        return self.serve.path_gbps

    @property
    def elapsed_ns(self) -> float:
        return self.serve.elapsed_ns

    @property
    def total_slo_goodput_gbps(self) -> float:
        return self.serve.total_slo_goodput_gbps

    @property
    def slo_attainment(self) -> float:
        """Completion-weighted SLO attainment across every tenant."""
        done = sum(t.completed for t in self.tenants.values())
        if not done:
            return 0.0
        hit = sum(t.completed * t.slo_attainment
                  for t in self.tenants.values())
        return hit / done

    def machine_rows(self) -> List[tuple]:
        """Per-machine aggregates: tenants, users, completions, SLO."""
        by_machine: Dict[str, List[str]] = {m.name: [] for m in self.machines}
        for tenant, machine in self.placement.items():
            by_machine.setdefault(machine, []).append(tenant)
        rows = []
        for machine in self.machines:
            names = by_machine.get(machine.name, [])
            reports = [self.tenants[n] for n in names if n in self.tenants]
            done = sum(t.completed for t in reports)
            att = (sum(t.completed * t.slo_attainment for t in reports)
                   / done if done else 0.0)
            moved = sum(1 for d in self.cluster_decisions
                        if d.machine == machine.name
                        and d.kind == "offload")
            rows.append((machine.name, machine.nic, len(names),
                         sum(self.users.get(n, 0) for n in names),
                         done,
                         sum(t.rejected for t in reports),
                         f"{sum(t.slo_goodput_gbps for t in reports):.1f}",
                         f"{100 * att:.1f}%", moved))
        return rows

    def summary(self) -> str:
        """The rack at a glance — one row per machine, totals in the
        title (per-tenant detail stays in ``.tenants``; with hundreds
        of tenants a per-tenant table is a log, not a summary)."""
        title = (f"cluster {self.scenario!r}: {len(self.tenants)} tenants "
                 f"~{self.total_users:,} users on {len(self.machines)} "
                 f"machines ({fmt_ns(self.elapsed_ns)}, "
                 f"{self.total_slo_goodput_gbps:.1f} slo-gbps, "
                 f"{100 * self.slo_attainment:.1f}% slo-att, "
                 f"{len(self.cluster_decisions)} cluster moves)")
        return format_table(
            ["machine", "nic", "tenants", "users", "done", "rej",
             "slo-gbps", "slo-att", "offloads"],
            self.machine_rows(), title=title)


def compile_scenario(scenario, machines: Optional[int] = None,
                     population_seed: Optional[int] = None,
                     placement: Optional[str] = None,
                     testbed=None):
    """Scenario → (plan, placement map, tenant specs, machine specs,
    topology, users-per-tenant).  Pure: no simulation happens here."""
    from repro.api.schema import ClusterScenario  # noqa: F401 — lazy:
    # repro.api.schema imports repro.cluster.machine at module load, so
    # importing it at *this* module's load would cycle.
    testbed = testbed or paper_testbed()
    specs = list(scenario.machine_specs())
    if machines:
        if machines < 1:
            raise ValueError(f"need >= 1 machine: {machines}")
        # CLI-scale override: keep the scenario's SNIC/RNIC ratio by
        # cycling a fixed pattern over the requested count.
        pattern = [m.nic for m in specs] or list(_NIC_CYCLE)
        specs = [MachineSpec(name=f"m{i:02d}",
                             nic=pattern[i % len(pattern)])
                 for i in range(machines)]
    seed = (population_seed if population_seed is not None
            else scenario.population_seed)
    sample = sample_population(scenario.populations, seed=seed,
                               duration_ns=scenario.duration_ns,
                               ingress_ns=scenario.ingress_ns)
    tenants: List[TenantSpec] = list(sample.tenants)
    pinned: Dict[str, str] = {}
    known = {m.name for m in specs}
    for doc in scenario.tenants:
        tenants.append(doc.to_spec(ingress_ns=scenario.ingress_ns))
        if doc.machine is not None:
            if doc.machine not in known:
                raise ValueError(
                    f"tenant {doc.name!r} pinned to machine "
                    f"{doc.machine!r}, which the machine override "
                    f"removed; drop the pin or the override")
            pinned[doc.name] = doc.machine
    policy = placement or scenario.scheduler.placement
    if policy == "binpack":
        where = bin_pack_placement(tenants, specs, testbed,
                                   headroom=scenario.scheduler.headroom,
                                   pinned=pinned)
    elif policy == "round-robin":
        where = round_robin_placement(tenants, specs, testbed,
                                      pinned=pinned)
    else:
        raise ValueError(f"unknown placement {policy!r}; "
                         "expected 'binpack' or 'round-robin'")
    by_machine: Dict[str, List[TenantSpec]] = {}
    for spec in sorted(tenants, key=lambda t: t.name):
        by_machine.setdefault(where[spec.name], []).append(spec)
    used = [m for m in specs if m.name in by_machine]
    shards = tuple(ShardSpec(name=m.name,
                             tenants=tuple(by_machine[m.name]),
                             nic=m.nic)
                   for m in used)
    nodes = [m.name for m in used] + [scenario.lb_name]
    overrides = {}
    for m in used:
        overrides[(scenario.lb_name, m.name)] = scenario.lb_latency_ns
        overrides[(m.name, scenario.lb_name)] = scenario.lb_latency_ns
    topology = ShardTopology(shards=tuple(nodes),
                             link_latency_ns=scenario.link_latency_ns,
                             overrides=overrides, lb=scenario.lb_name)
    plan = ShardPlan(shards=shards, topology=topology,
                     cluster_faults=scenario.faults)
    users = {name: sample.users.get(name, 0) for name in where}
    return plan, where, tenants, tuple(used), topology, users


def run_cluster(scenario, jobs: Optional[int] = None,
                machines: Optional[int] = None,
                population_seed: Optional[int] = None,
                placement: Optional[str] = None,
                migrate: Optional[bool] = None,
                testbed=None, engine: Optional[str] = None,
                supervisor=None) -> ClusterReport:
    """Run one rack-scale scenario end to end.

    ``scenario`` is a :class:`~repro.api.schema.ClusterScenario` or a
    path to its JSON document.  ``machines``/``population_seed``/
    ``placement``/``migrate``/``engine`` override the corresponding
    scenario fields (the CLI's knobs); ``jobs`` and ``supervisor`` pass
    through to :func:`~repro.sim.shard.run_sharded`.

    Bit-identity: the report is identical across ``jobs={1,N}``, with
    or without a live migration controller, because placement and
    sampling are pure and the controller is a pure function of the
    (deterministic) heartbeat sequence.
    """
    from repro.api.schema import ClusterScenario  # lazy — see above
    if isinstance(scenario, (str, bytes)) or hasattr(scenario, "read_text"):
        scenario = ClusterScenario.from_file(scenario)
    testbed = testbed or paper_testbed()
    plan, where, tenants, used, topology, users = compile_scenario(
        scenario, machines=machines, population_seed=population_seed,
        placement=placement, testbed=testbed)
    controller = None
    moving = scenario.scheduler.migrate if migrate is None else migrate
    if moving and len(plan.shards) > 1:
        injector = None
        if plan.chaotic:
            # The controller's own oracle instance: machine_down and
            # machines_lost are pure functions of the plan, so sharing
            # state with run_sharded's injector is unnecessary.
            injector = ClusterInjector(plan.cluster_faults,
                                       [s.name for s in plan.shards],
                                       topology)
        controller = ClusterScheduler(
            specs={t.name: t for t in tenants},
            home=dict(where), topology=topology, injector=injector,
            patience=scenario.scheduler.patience,
            cooldown_windows=scenario.scheduler.cooldown_windows,
            min_samples=scenario.scheduler.min_samples)
    report = run_sharded(plan, jobs=jobs, supervisor=supervisor,
                         controller=controller, testbed=testbed,
                         engine=engine or scenario.engine)
    return ClusterReport(
        scenario=scenario.name,
        serve=report,
        machines=used,
        placement=dict(where),
        cluster_decisions=(list(controller.decisions)
                           if controller is not None else []),
        total_users=sum(users.values()),
        users=users,
    )
