"""Rack-scale serving: many machines, one scheduler, one scenario.

* :class:`MachineSpec` — one machine and its NIC device (off-path
  SmartNIC or plain RNIC).
* :func:`bin_pack_placement` / :func:`round_robin_placement` — tenant →
  machine placement against per-machine Fig-11 budgets (and the static
  baseline).
* :class:`ClusterScheduler` — barrier-time migration over the lockstep
  fabric (SLO-breach offload, crash retarget), deterministic at any
  ``jobs``.
* :func:`run_cluster` / :class:`ClusterReport` — compile a declarative
  :class:`~repro.api.schema.ClusterScenario` and run it end to end.
"""

from repro.cluster.machine import MachineSpec
from repro.cluster.run import ClusterReport, compile_scenario, run_cluster
from repro.cluster.scheduler import (ClusterDecision, ClusterScheduler,
                                     bin_pack_placement,
                                     round_robin_placement)

__all__ = [
    "ClusterDecision",
    "ClusterReport",
    "ClusterScheduler",
    "MachineSpec",
    "bin_pack_placement",
    "compile_scenario",
    "round_robin_placement",
    "run_cluster",
]
