"""Machine descriptions for the simulated rack.

A rack mixes machines that carry the paper's off-path SmartNIC
(``"snic"`` — SoC endpoints, all three comm paths, path-③ bulk
offload) with machines that carry a plain RNIC (``"rnic"`` — host-only
termination, no SoC, no bulk path).  Placement must therefore reason
about *per-device* budgets, not just per-path ones: an RNIC machine
can absorb client tenants on path ① but can never host a bulk shipper
or offer path ② relief.
"""

from __future__ import annotations

from dataclasses import dataclass

_NICS = ("snic", "rnic")


@dataclass(frozen=True)
class MachineSpec:
    """One rack machine: a name and the NIC device it carries."""

    name: str
    nic: str = "snic"

    def __post_init__(self):
        if not self.name:
            raise ValueError("machine needs a name")
        if self.nic not in _NICS:
            raise ValueError(f"machine {self.name!r}: unknown nic "
                             f"{self.nic!r}; expected one of {_NICS}")

    @property
    def soc(self) -> bool:
        """Whether the machine has schedulable SoC endpoints."""
        return self.nic == "snic"

    def to_dict(self) -> dict:
        return {"name": self.name, "nic": self.nic}

    @classmethod
    def from_dict(cls, raw: dict) -> "MachineSpec":
        return cls(name=raw["name"], nic=raw.get("nic", "snic"))
