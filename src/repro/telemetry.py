"""Hardware-counter telemetry for the simulated cluster.

The paper's PCIe analysis leans on Bluefield's performance-monitoring
counters (its ref [29]); this module is their simulated equivalent:
point-in-time snapshots of every link's TLP/byte counters, deltas
between snapshots, and rate reports — so experiments can be instrumented
the way the authors instrumented the real device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.report import format_table
from repro.net.cluster import SimCluster
from repro.units import to_gbps


@dataclass(frozen=True)
class CounterSnapshot:
    """All counters at one simulated instant."""

    timestamp: float
    counters: Dict[str, float]

    def __sub__(self, earlier: "CounterSnapshot") -> "CounterDelta":
        """Movement from ``earlier`` to this snapshot.

        Handles asymmetric key sets — a counter absent from one side
        reads as 0.0 there (counters appear mid-run, e.g. the first
        retransmit creates ``rdma.retransmits``) — and keeps the delta
        keys sorted regardless of which side contributed them.
        """
        if earlier.timestamp > self.timestamp:
            raise ValueError(
                f"snapshot order reversed: earlier taken at "
                f"{earlier.timestamp} ns, later at {self.timestamp} ns")
        keys = sorted(set(self.counters) | set(earlier.counters))
        deltas = {key: (self.counters.get(key, 0.0)
                        - earlier.counters.get(key, 0.0))
                  for key in keys}
        return CounterDelta(elapsed_ns=self.timestamp - earlier.timestamp,
                            deltas=deltas)


@dataclass(frozen=True)
class CounterDelta:
    """Counter movement over a window."""

    elapsed_ns: float
    deltas: Dict[str, float]

    def rate(self, key: str) -> float:
        """Events (or bytes) per ns for one counter."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.deltas.get(key, 0.0) / self.elapsed_ns

    def mpps(self, key: str) -> float:
        """A TLP counter's rate in millions of packets per second."""
        return self.rate(key) * 1e3

    def gbps(self, key: str) -> float:
        """A byte counter's rate in Gbps."""
        return to_gbps(self.rate(key))


class Telemetry:
    """Reads the cluster's counters like a monitoring agent would."""

    def __init__(self, cluster: SimCluster):
        self.cluster = cluster

    def snapshot(self) -> CounterSnapshot:
        """Capture every link counter at the current simulated time."""
        counters: Dict[str, float] = {}
        snic = self.cluster.snic
        if snic is not None:
            for name, link in (("pcie1", snic.pcie1), ("pcie0", snic.pcie0)):
                counters[f"{name}.tlps_to_nic"] = link.tlps_fwd.total
                counters[f"{name}.tlps_to_endpoint"] = link.tlps_rev.total
                counters[f"{name}.bytes"] = link.total_data_bytes
                counters[f"{name}.tlps"] = link.total_tlps
        else:
            link = self.cluster.rnic.host_link
            counters["hostlink.tlps"] = link.total_tlps
            counters["hostlink.bytes"] = link.total_data_bytes
        server = self.cluster.server_channel
        counters["net.server.tx_bytes"] = server.fwd.bytes_sent.total
        counters["net.server.rx_bytes"] = server.rev.bytes_sent.total
        for node in self.cluster.clients():
            channel = self.cluster.channel(node)
            counters[f"net.{node.name}.tx_bytes"] = (
                channel.fwd.bytes_sent.total)
            counters[f"net.{node.name}.rx_bytes"] = (
                channel.rev.bytes_sent.total)
        counters["nic.pipeline_in_use"] = self.cluster.nic_pipeline.in_use
        counters["nic.pipeline_queued"] = (
            self.cluster.nic_pipeline.queue_length)
        # Reliability/fault counters (faults.injected, rdma.retransmits,
        # rdma.rnr_naks, qp.recoveries, ...) — absent on fault-free runs.
        counters.update(self.cluster.stats)
        return CounterSnapshot(timestamp=self.cluster.sim.now,
                               counters=dict(sorted(counters.items())))

    def delta(self, since: CounterSnapshot) -> CounterDelta:
        """Counter movement from ``since`` to the current instant.

        The one-liner behind windowed monitoring (the path scheduler's
        per-tick bandwidth accounting): snapshot once, then call
        ``delta(start)`` whenever a window closes.
        """
        return self.snapshot() - since

    def report(self, start: CounterSnapshot,
               end: CounterSnapshot) -> str:
        """A formatted rate table over a window (Mpps for TLPs, Gbps
        for bytes, raw deltas otherwise)."""
        delta = end - start
        rows = []
        for key in sorted(delta.deltas):
            moved = delta.deltas[key]
            if moved == 0:
                continue
            if key.endswith("bytes"):
                value = f"{delta.gbps(key):.2f} Gbps"
            elif "tlps" in key:
                value = f"{delta.mpps(key):.2f} Mpps"
            else:
                value = f"{moved:g}"
            rows.append([key, f"{moved:g}", value])
        window_us = delta.elapsed_ns / 1000
        return format_table(["counter", "delta", "rate"], rows,
                            title=f"counters over {window_us:.1f} us")


# ---------------------------------------------------------------------------
# Model-evaluation performance counters (the sweep engine's caches)
# ---------------------------------------------------------------------------


def perf_counters() -> Dict[str, float]:
    """Counters of every model result cache plus the solver engines.

    These sit alongside the simulated hardware counters: the same
    monitoring surface reports both what the simulated device did and
    how cheaply the models produced it.  ``engine.<name>.points`` /
    ``.batches`` / ``.solve_s`` account for which solver backend
    (scalar or vector) solved how many points in how much wall-time.
    """
    from repro.core.batch import ENGINE_STATS
    from repro.core.cache import counter_snapshot

    counters = counter_snapshot()
    counters.update(ENGINE_STATS.counters())
    return counters


def perf_report() -> str:
    """Formatted tables of cache counters and per-engine solve stats."""
    from repro.core.batch import ENGINE_STATS
    from repro.core.cache import registered_caches

    rows = []
    for cache in registered_caches():
        total = cache.hits + cache.misses
        rows.append([cache.name, f"{cache.hits:g}", f"{cache.misses:g}",
                     f"{len(cache):g}",
                     f"{cache.hit_rate:.0%}" if total else "-"])
    out = format_table(["cache", "hits", "misses", "entries", "hit rate"],
                       rows, title="model result caches")
    if ENGINE_STATS.points:
        engine_rows = []
        for engine in sorted(ENGINE_STATS.points):
            points = ENGINE_STATS.points[engine]
            seconds = ENGINE_STATS.seconds[engine]
            rate = f"{points / seconds:,.0f}" if seconds > 0 else "-"
            engine_rows.append([engine, f"{points:g}",
                                f"{ENGINE_STATS.batches[engine]:g}",
                                f"{seconds * 1e3:.2f}", rate])
        out += "\n\n" + format_table(
            ["engine", "points", "batches", "solve ms", "points/s"],
            engine_rows, title="solver engines")
    return out
