"""Bandwidth-limited channels for modelling serial links.

A :class:`SimplexChannel` serializes transfers at a fixed byte rate and
delivers them after a propagation latency — the standard
store-and-forward pipe.  A :class:`DuplexChannel` is a pair of independent
simplex channels, one per direction, matching full-duplex links such as
PCIe lanes and InfiniBand ports where opposite-direction traffic does not
compete (§3.1 of the paper: READ+WRITE multiplex to ~2x one direction).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.events import Event
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class _Lost:
    """Sentinel delivered by a transfer that was dropped in flight.

    A fault injector (see :mod:`repro.faults`) may replace a channel's
    delivery event with one carrying :data:`LOST`; consumers that care
    about reliability compare the yielded value against it.  Fault-free
    channels never produce it.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<LOST>"


LOST = _Lost()


class SimplexChannel:
    """One direction of a serial link.

    ``bandwidth`` is in bytes/ns; ``latency`` is the propagation delay in
    ns added after serialization.  Transfers are serialized FIFO: a
    transfer begins when all previously submitted bytes have left the
    sender.
    """

    def __init__(self, sim: "Simulator", bandwidth: float, latency: float = 0.0,
                 name: str = ""):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self._free_at: float = 0.0
        self.bytes_sent = Counter()
        self.transfers = Counter()

    def busy_until(self) -> float:
        """Simulated time at which the sender side becomes idle."""
        return max(self._free_at, self.sim.now)

    def send(self, nbytes: float) -> Event:
        """Submit a transfer; the returned event fires at delivery time."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        start = max(self._free_at, self.sim.now)
        serialization = nbytes / self.bandwidth
        self._free_at = start + serialization
        self.bytes_sent.add(nbytes)
        self.transfers.add(1)
        done = Event(self.sim)
        done.succeed(nbytes, delay=self._free_at + self.latency - self.sim.now)
        return done

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` ns spent serializing bytes."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, (self.bytes_sent.total / self.bandwidth) / elapsed)

    def last_delivery_delay(self) -> float:
        """Delay from now until the most recently submitted transfer
        would deliver (used by fault injectors to time a LOST marker)."""
        return max(0.0, self._free_at - self.sim.now) + self.latency


class DuplexChannel:
    """A full-duplex link: two independent simplex channels.

    Directions are named ``fwd`` (A->B) and ``rev`` (B->A); which physical
    end is "A" is the caller's convention.
    """

    def __init__(self, sim: "Simulator", bandwidth: float, latency: float = 0.0,
                 name: str = ""):
        self.name = name
        self.fwd = SimplexChannel(sim, bandwidth, latency, name=f"{name}.fwd")
        self.rev = SimplexChannel(sim, bandwidth, latency, name=f"{name}.rev")

    def send(self, nbytes: float, forward: bool = True) -> Event:
        """Transfer in the given direction; fires at delivery."""
        channel = self.fwd if forward else self.rev
        return channel.send(nbytes)

    @property
    def bytes_sent(self) -> float:
        """Total bytes carried in both directions."""
        return self.fwd.bytes_sent.total + self.rev.bytes_sent.total
