"""Engine cross-checking: prove the hybrid engine against pure DES.

The hybrid engine's contract (docs/performance.md) is tiered:

* **exact** — completed / rejected / lost counts per tenant, and the
  *structure* of the scheduler's decision log (time, tenant, kind,
  paths, reason, generation);
* **toleranced** — p50/p99 latency and goodput per tenant, and the
  ``observed_p99_ns`` attribution field on decisions, each within the
  relative bounds declared by
  :class:`~repro.sim.hybrid.HybridConfig` (``latency_tol`` /
  ``goodput_tol``).

:func:`crosscheck` runs one scenario under both engines and grades
every clause of that contract; :func:`crosscheck_suite` sweeps the
standard scenario families (steady adaptive/static runs, SoC crash,
crash + recovery, a packet-loss window, and a mid-window fault
transient exercising the adaptive steadiness envelope).  The CLI exposes it as
``python -m repro crosscheck`` and ``scripts/bench_trajectory.py
--check`` gates on it, so a hybrid change that drifts outside the
declared tolerances fails loudly rather than silently skewing results.

Scenarios are passed as zero-argument *factories* because
:class:`~repro.sched.tenant.TenantSpec` carries live RNG streams —
each engine run must consume a fresh copy or the second run would see
different arrivals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan, PacketLoss, SocCrash
from repro.sched.serve import ServeReport, run_serve
from repro.sim.hybrid import HybridConfig

#: Fields of ``Decision.as_tuple()`` compared bit-exactly (everything
#: but ``observed_p99_ns``, which is a windowed-telemetry attribution
#: and only required to agree within ``latency_tol``).
_P99_INDEX = 9


def _rel_err(got: float, want: float) -> float:
    """Relative error with a floor so 0-vs-0 compares clean."""
    scale = max(abs(want), 1e-9)
    return abs(got - want) / scale


@dataclass(frozen=True)
class TenantCheck:
    """Per-tenant verdict: exact counts plus toleranced percentiles."""

    name: str
    counts_ok: bool
    p50_err: float
    p99_err: float
    goodput_err: float
    latency_tol: float
    goodput_tol: float

    @property
    def ok(self) -> bool:
        return (self.counts_ok and self.p50_err <= self.latency_tol
                and self.p99_err <= self.latency_tol
                and self.goodput_err <= self.goodput_tol)


@dataclass(frozen=True)
class CrossCheck:
    """The graded contract for one scenario run under both engines."""

    scenario: str
    tenants: Tuple[TenantCheck, ...]
    decisions_ok: bool
    decision_p99_err: float
    latency_tol: float
    des_seconds: float
    hybrid_seconds: float
    hybrid_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.des_seconds / max(self.hybrid_seconds, 1e-9)

    @property
    def ok(self) -> bool:
        return (self.decisions_ok
                and self.decision_p99_err <= self.latency_tol
                and all(t.ok for t in self.tenants))

    def failures(self) -> Tuple[str, ...]:
        """Human-readable clause violations (empty when ``ok``)."""
        out = []
        if not self.decisions_ok:
            out.append("decision log structure diverged")
        if self.decision_p99_err > self.latency_tol:
            out.append(f"decision observed_p99 drift "
                       f"{self.decision_p99_err:.0%} > "
                       f"{self.latency_tol:.0%}")
        for t in self.tenants:
            if not t.counts_ok:
                out.append(f"{t.name}: completion/reject/loss counts differ")
            if t.p50_err > t.latency_tol:
                out.append(f"{t.name}: p50 drift {t.p50_err:.0%}")
            if t.p99_err > t.latency_tol:
                out.append(f"{t.name}: p99 drift {t.p99_err:.0%}")
            if t.goodput_err > t.goodput_tol:
                out.append(f"{t.name}: goodput drift {t.goodput_err:.0%}")
        return tuple(out)


def _check_decisions(des: ServeReport,
                     hybrid: ServeReport) -> Tuple[bool, float]:
    des_rows = [d.as_tuple() for d in des.decisions]
    hyb_rows = [d.as_tuple() for d in hybrid.decisions]
    if len(des_rows) != len(hyb_rows):
        return False, float("inf")
    worst = 0.0
    for want, got in zip(des_rows, hyb_rows):
        if (want[:_P99_INDEX] != got[:_P99_INDEX]
                or want[_P99_INDEX + 1:] != got[_P99_INDEX + 1:]):
            return False, float("inf")
        worst = max(worst, _rel_err(got[_P99_INDEX], want[_P99_INDEX]))
    return True, worst


def crosscheck(scenario: str, factory: Callable[[], Sequence],
               config: Optional[HybridConfig] = None,
               **serve_kwargs) -> CrossCheck:
    """Run ``factory()``'s tenants under both engines and grade them.

    ``serve_kwargs`` go to both :func:`~repro.sched.serve.run_serve`
    calls (``adaptive=``, ``faults=`` ...).  The hybrid run uses
    ``config`` (default :class:`HybridConfig`), whose tolerances are
    also the grading thresholds.
    """
    config = config or HybridConfig()
    t0 = time.perf_counter()
    des = run_serve(factory(), **serve_kwargs)
    des_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    hyb = run_serve(factory(), engine="hybrid", hybrid_config=config,
                    **serve_kwargs)
    hybrid_seconds = time.perf_counter() - t0

    tenants = []
    for name in sorted(des.tenants):
        want, got = des.tenants[name], hyb.tenants[name]
        tenants.append(TenantCheck(
            name=name,
            counts_ok=(want.completed, want.rejected, want.lost)
                      == (got.completed, got.rejected, got.lost),
            p50_err=_rel_err(got.p50_ns, want.p50_ns),
            p99_err=_rel_err(got.p99_ns, want.p99_ns),
            goodput_err=_rel_err(got.goodput_gbps, want.goodput_gbps),
            latency_tol=config.latency_tol,
            goodput_tol=config.goodput_tol,
        ))
    decisions_ok, p99_err = _check_decisions(des, hyb)
    return CrossCheck(
        scenario=scenario,
        tenants=tuple(tenants),
        decisions_ok=decisions_ok,
        decision_p99_err=p99_err,
        latency_tol=config.latency_tol,
        des_seconds=des_seconds,
        hybrid_seconds=hybrid_seconds,
        hybrid_stats=dict(hyb.hybrid_stats or {}),
    )


# -- CI-overlap agreement (the statistical upgrade of the tolerance gates) ---------


@dataclass(frozen=True)
class AgreementRow:
    """One engine-agreement clause graded by confidence-interval overlap."""

    tenant: str
    metric: str
    des: "Estimate"
    hybrid: "Estimate"
    ok: bool
    detail: str


def ci_agreement(des: ServeReport, hybrid: ServeReport,
                 config: Optional[HybridConfig] = None,
                 confidence: float = 0.95) -> Tuple[AgreementRow, ...]:
    """Grade DES-vs-hybrid agreement with CI-overlap gates.

    The original :func:`crosscheck` grades point estimates against
    point tolerances.  This is the statistical version ``repro
    validate`` uses: each per-tenant metric becomes a warm-up-truncated
    batch-means :class:`~repro.stats.kernels.Estimate` over the run's
    fixed-window archive, and two engines *agree* when the intervals
    overlap (falling back to the :class:`HybridConfig` relative
    tolerance for degenerate zero-width intervals).  Completion /
    rejection / loss counts stay exact — no interval excuses a count.
    """
    from repro.stats.kernels import Estimate, agreement
    from repro.stats.replicate import report_estimate

    config = config or HybridConfig()
    rows = []
    for name in sorted(des.tenants):
        want, got = des.tenants[name], hybrid.tenants[name]
        counts_ok = ((want.completed, want.rejected, want.lost)
                     == (got.completed, got.rejected, got.lost))
        rows.append(AgreementRow(
            tenant=name, metric="counts",
            des=Estimate(mean=float(want.completed), half_width=0.0, n=1),
            hybrid=Estimate(mean=float(got.completed), half_width=0.0, n=1),
            ok=counts_ok,
            detail=(f"completed/rejected/lost exact: "
                    f"{want.completed}/{want.rejected}/{want.lost}"
                    if counts_ok else
                    f"counts differ: {want.completed}/{want.rejected}/"
                    f"{want.lost} vs {got.completed}/{got.rejected}/"
                    f"{got.lost}")))
        for metric, tol in (("p50_ns", config.latency_tol),
                            ("p99_ns", config.latency_tol),
                            ("goodput_gbps", config.goodput_tol)):
            a = report_estimate(des, name, field=metric,
                                confidence=confidence)
            b = report_estimate(hybrid, name, field=metric,
                                confidence=confidence)
            ok, detail = agreement(a, b, tolerance=tol)
            rows.append(AgreementRow(tenant=name, metric=metric,
                                     des=a, hybrid=b, ok=ok, detail=detail))
    return tuple(rows)


# -- the standard scenario families ------------------------------------------------


def standard_scenarios(duration_ns: float = 1_500_000.0,
                       seed: int = 0) -> Dict[str, Dict]:
    """Named scenario families covering the hybrid engine's regimes.

    Steady adaptive traffic (where fast-forwarding pays), the static
    baseline (which must never flip — overloaded tenants reject), and
    three fault shapes that force guard windows and splice-backs.
    """
    from repro.sched.serve import mixed_tenant_workload

    def tenants():
        return mixed_tenant_workload(duration_ns=duration_ns, seed=seed)

    third, two_thirds = duration_ns / 3, 2 * duration_ns / 3
    return {
        "adaptive": dict(factory=tenants),
        "static": dict(factory=tenants, adaptive=False),
        "soc-crash": dict(factory=tenants, faults=FaultPlan(
            faults=(SocCrash(at=third),))),
        "crash-recover": dict(factory=tenants, faults=FaultPlan(
            faults=(SocCrash(at=third, recover_at=two_thirds),))),
        "packet-loss": dict(factory=tenants, faults=FaultPlan(
            faults=(PacketLoss("net.server0", 0.02, start=third,
                               end=two_thirds),))),
        # A crash landing just off the middle of a control window — the
        # short-run transient that forces the adaptive guard envelope
        # to re-guard early enough that no analytic in-flight tail
        # straddles the crash instant (ROADMAP 2(a)).
        "fault-transient": dict(factory=tenants, faults=FaultPlan(
            faults=(SocCrash(at=duration_ns * 0.495 + 500.0),))),
    }


def crosscheck_suite(duration_ns: float = 1_500_000.0, seed: int = 0,
                     config: Optional[HybridConfig] = None,
                     scenarios: Optional[Sequence[str]] = None,
                     ) -> Tuple[CrossCheck, ...]:
    """Cross-check every standard scenario family (or a named subset)."""
    families = standard_scenarios(duration_ns=duration_ns, seed=seed)
    if scenarios:
        unknown = set(scenarios) - families.keys()
        if unknown:
            raise ValueError(f"unknown scenario(s) {sorted(unknown)}; "
                             f"choose from {sorted(families)}")
        families = {name: families[name] for name in scenarios}
    results = []
    for name, spec in families.items():
        kwargs = dict(spec)
        factory = kwargs.pop("factory")
        results.append(crosscheck(name, factory, config=config, **kwargs))
    return tuple(results)


# -- cluster-fault determinism family ----------------------------------------------


@dataclass(frozen=True)
class ClusterCheck:
    """Verdict of the cluster-chaos determinism family.

    Unlike :class:`CrossCheck` this family grades the *sharded
    executor*, not the hybrid engine: each clause compares two whole
    cluster runs (multiprocess vs in-process, chaotic vs pristine,
    killed vs unkilled) that the contract says must agree exactly.
    """

    scenario: str
    clauses: Tuple[Tuple[str, bool, str], ...]
    des_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(ok for _name, ok, _detail in self.clauses)

    def failures(self) -> Tuple[str, ...]:
        return tuple(f"{name}: {detail}"
                     for name, ok, detail in self.clauses if not ok)


def cluster_chaos_scenario(duration_ns: float = 400_000.0, seed: int = 0):
    """The standard 4-machine chaos scenario: ``(plan, chaos_plan)``.

    Four shards, each one client tenant plus one bulk tenant; even
    shards export failover traffic and shard2 ships bulk completions,
    so the fabric carries both kinds.  The chaos plan crashes two
    machines (one recovers), loses a quarter of the fabric, delays
    everything leaving shard2, partitions shard2↔shard3 for a window,
    and reorders deliveries into shard3 — every cluster fault class at
    once, all decided by pure hashes of ``seed``.
    """
    from repro.faults.plan import (FabricDelay, FabricLoss, FabricPartition,
                                   FabricReorder, MachineCrash)
    from repro.sched.tenant import SloSpec, TenantSpec
    from repro.sim.shard import ShardPlan, ShardSpec
    from repro.sim.xshard import CrossTraffic
    from repro.workloads.mix import OpMix

    interval_ns = 4_000.0
    requests = max(20, int(duration_ns / interval_ns / 2))

    def tenant(name: str, tseed: int, bulk: bool) -> TenantSpec:
        mix = (OpMix(read=1.0, write=0.0, send=0.0) if bulk
               else OpMix(read=0.5, write=0.25, send=0.25))
        return TenantSpec(name=name, payload=4096 if bulk else 256,
                          interval_ns=interval_ns, requests=requests,
                          mix=mix, slo=SloSpec(p99_ns=60_000.0),
                          bulk=bulk, seed=tseed)

    shards = []
    for i in range(4):
        kind = "bulk" if i == 2 else "failover"
        exports = ()
        if i % 2 == 0 or i == 3:
            exports = (CrossTraffic(tenant=f"t{i}b",
                                    dst_shard=f"shard{(i + 1) % 4}",
                                    kind=kind),)
        shards.append(ShardSpec(
            name=f"shard{i}",
            tenants=(tenant(f"t{i}a", seed * 100 + 10 + i, bulk=False),
                     tenant(f"t{i}b", seed * 100 + 20 + i, bulk=True)),
            exports=exports))
    plan = ShardPlan(shards=tuple(shards))
    third, two_thirds = duration_ns / 3, 2 * duration_ns / 3
    chaos = FaultPlan(faults=(
        MachineCrash(shard="shard0", at=third * 0.5, recover_at=two_thirds),
        MachineCrash(shard="shard3", at=two_thirds),
        FabricLoss(rate=0.25),
        FabricDelay(extra_ns=30_000.0, src="shard2"),
        FabricPartition(a="shard2", b="shard3", start=third, end=two_thirds),
        FabricReorder(dst="shard3"),
    ), seed=seed + 7)
    return plan, chaos


def _cluster_digest(report: ServeReport, counters: bool = True) -> tuple:
    parts = (
        tuple(sorted((name, t.completed, t.rejected, t.lost, t.p50_ns,
                      t.p99_ns, t.goodput_gbps)
                     for name, t in report.tenants.items())),
        tuple(d.as_tuple() for d in report.decisions),
    )
    if counters:
        parts += (tuple(sorted(report.counters.items())),)
    return parts


def cluster_crosscheck(duration_ns: float = 400_000.0,
                       seed: int = 0) -> ClusterCheck:
    """Grade the cluster-chaos determinism contract (three clauses).

    1. **jobs-identity** — under a plan exercising every cluster fault
       class, ``jobs=4`` (worker processes) is bit-identical to
       ``jobs=1`` (the in-process reference): counts, latencies,
       decision logs and telemetry counters.
    2. **empty-plan-baseline** — an *empty* cluster fault plan, run
       under the default supervisor, is bit-identical to the same plan
       with no cluster machinery at all (chaos is pay-as-you-go).
    3. **kill-respawn** — a supervised run whose worker is SIGKILLed
       mid-window and respawned from the window-log checkpoint lands on
       exactly the counts and decisions of the unkilled run.
    """
    from dataclasses import replace

    from repro.sim.shard import run_sharded
    from repro.sim.supervise import SupervisorConfig

    plan, chaos = cluster_chaos_scenario(duration_ns=duration_ns, seed=seed)
    chaotic = replace(plan, cluster_faults=chaos)
    start = time.perf_counter()
    clauses = []

    ref = run_sharded(chaotic, jobs=1)
    multi = run_sharded(chaotic, jobs=4)
    same = _cluster_digest(ref) == _cluster_digest(multi)
    dropped = int(ref.counters.get("cluster.dropped", 0))
    clauses.append((
        "jobs-identity", same,
        "jobs=4 == jobs=1 under full chaos "
        f"({dropped} fabric drops)" if same else
        "jobs=4 diverged from the in-process reference under chaos"))

    baseline = run_sharded(plan, jobs=1)
    empty = run_sharded(replace(plan, cluster_faults=FaultPlan()),
                        jobs=1, supervisor=SupervisorConfig())
    same = _cluster_digest(baseline) == _cluster_digest(empty)
    clauses.append((
        "empty-plan-baseline", same,
        "empty cluster plan + supervisor == pristine run" if same else
        "an empty cluster plan perturbed the run"))

    killed = run_sharded(chaotic, jobs=4,
                         supervisor=SupervisorConfig(kill_shard="shard2",
                                                     kill_window=3))
    same = (_cluster_digest(multi, counters=False)
            == _cluster_digest(killed, counters=False))
    respawns = int(killed.counters.get("supervisor.respawns", 0))
    clauses.append((
        "kill-respawn", same,
        f"SIGKILL + {respawns} respawn(s) reproduced the unkilled run"
        if same else
        "a respawned worker diverged from the unkilled run"))

    return ClusterCheck(scenario="cluster-fault", clauses=tuple(clauses),
                        des_seconds=time.perf_counter() - start)
