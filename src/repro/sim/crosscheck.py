"""Engine cross-checking: prove the hybrid engine against pure DES.

The hybrid engine's contract (docs/performance.md) is tiered:

* **exact** — completed / rejected / lost counts per tenant, and the
  *structure* of the scheduler's decision log (time, tenant, kind,
  paths, reason, generation);
* **toleranced** — p50/p99 latency and goodput per tenant, and the
  ``observed_p99_ns`` attribution field on decisions, each within the
  relative bounds declared by
  :class:`~repro.sim.hybrid.HybridConfig` (``latency_tol`` /
  ``goodput_tol``).

:func:`crosscheck` runs one scenario under both engines and grades
every clause of that contract; :func:`crosscheck_suite` sweeps the
standard scenario families (steady adaptive/static runs, SoC crash,
crash + recovery, a packet-loss window, and a mid-window fault
transient exercising the adaptive steadiness envelope).  The CLI exposes it as
``python -m repro crosscheck`` and ``scripts/bench_trajectory.py
--check`` gates on it, so a hybrid change that drifts outside the
declared tolerances fails loudly rather than silently skewing results.

Scenarios are passed as zero-argument *factories* because
:class:`~repro.sched.tenant.TenantSpec` carries live RNG streams —
each engine run must consume a fresh copy or the second run would see
different arrivals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan, PacketLoss, SocCrash
from repro.sched.serve import ServeReport, run_serve
from repro.sim.hybrid import HybridConfig

#: Fields of ``Decision.as_tuple()`` compared bit-exactly (everything
#: but ``observed_p99_ns``, which is a windowed-telemetry attribution
#: and only required to agree within ``latency_tol``).
_P99_INDEX = 9


def _rel_err(got: float, want: float) -> float:
    """Relative error with a floor so 0-vs-0 compares clean."""
    scale = max(abs(want), 1e-9)
    return abs(got - want) / scale


@dataclass(frozen=True)
class TenantCheck:
    """Per-tenant verdict: exact counts plus toleranced percentiles."""

    name: str
    counts_ok: bool
    p50_err: float
    p99_err: float
    goodput_err: float
    latency_tol: float
    goodput_tol: float

    @property
    def ok(self) -> bool:
        return (self.counts_ok and self.p50_err <= self.latency_tol
                and self.p99_err <= self.latency_tol
                and self.goodput_err <= self.goodput_tol)


@dataclass(frozen=True)
class CrossCheck:
    """The graded contract for one scenario run under both engines."""

    scenario: str
    tenants: Tuple[TenantCheck, ...]
    decisions_ok: bool
    decision_p99_err: float
    latency_tol: float
    des_seconds: float
    hybrid_seconds: float
    hybrid_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.des_seconds / max(self.hybrid_seconds, 1e-9)

    @property
    def ok(self) -> bool:
        return (self.decisions_ok
                and self.decision_p99_err <= self.latency_tol
                and all(t.ok for t in self.tenants))

    def failures(self) -> Tuple[str, ...]:
        """Human-readable clause violations (empty when ``ok``)."""
        out = []
        if not self.decisions_ok:
            out.append("decision log structure diverged")
        if self.decision_p99_err > self.latency_tol:
            out.append(f"decision observed_p99 drift "
                       f"{self.decision_p99_err:.0%} > "
                       f"{self.latency_tol:.0%}")
        for t in self.tenants:
            if not t.counts_ok:
                out.append(f"{t.name}: completion/reject/loss counts differ")
            if t.p50_err > t.latency_tol:
                out.append(f"{t.name}: p50 drift {t.p50_err:.0%}")
            if t.p99_err > t.latency_tol:
                out.append(f"{t.name}: p99 drift {t.p99_err:.0%}")
            if t.goodput_err > t.goodput_tol:
                out.append(f"{t.name}: goodput drift {t.goodput_err:.0%}")
        return tuple(out)


def _check_decisions(des: ServeReport,
                     hybrid: ServeReport) -> Tuple[bool, float]:
    des_rows = [d.as_tuple() for d in des.decisions]
    hyb_rows = [d.as_tuple() for d in hybrid.decisions]
    if len(des_rows) != len(hyb_rows):
        return False, float("inf")
    worst = 0.0
    for want, got in zip(des_rows, hyb_rows):
        if (want[:_P99_INDEX] != got[:_P99_INDEX]
                or want[_P99_INDEX + 1:] != got[_P99_INDEX + 1:]):
            return False, float("inf")
        worst = max(worst, _rel_err(got[_P99_INDEX], want[_P99_INDEX]))
    return True, worst


def crosscheck(scenario: str, factory: Callable[[], Sequence],
               config: Optional[HybridConfig] = None,
               **serve_kwargs) -> CrossCheck:
    """Run ``factory()``'s tenants under both engines and grade them.

    ``serve_kwargs`` go to both :func:`~repro.sched.serve.run_serve`
    calls (``adaptive=``, ``faults=`` ...).  The hybrid run uses
    ``config`` (default :class:`HybridConfig`), whose tolerances are
    also the grading thresholds.
    """
    config = config or HybridConfig()
    t0 = time.perf_counter()
    des = run_serve(factory(), **serve_kwargs)
    des_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    hyb = run_serve(factory(), engine="hybrid", hybrid_config=config,
                    **serve_kwargs)
    hybrid_seconds = time.perf_counter() - t0

    tenants = []
    for name in sorted(des.tenants):
        want, got = des.tenants[name], hyb.tenants[name]
        tenants.append(TenantCheck(
            name=name,
            counts_ok=(want.completed, want.rejected, want.lost)
                      == (got.completed, got.rejected, got.lost),
            p50_err=_rel_err(got.p50_ns, want.p50_ns),
            p99_err=_rel_err(got.p99_ns, want.p99_ns),
            goodput_err=_rel_err(got.goodput_gbps, want.goodput_gbps),
            latency_tol=config.latency_tol,
            goodput_tol=config.goodput_tol,
        ))
    decisions_ok, p99_err = _check_decisions(des, hyb)
    return CrossCheck(
        scenario=scenario,
        tenants=tuple(tenants),
        decisions_ok=decisions_ok,
        decision_p99_err=p99_err,
        latency_tol=config.latency_tol,
        des_seconds=des_seconds,
        hybrid_seconds=hybrid_seconds,
        hybrid_stats=dict(hyb.hybrid_stats or {}),
    )


# -- the standard scenario families ------------------------------------------------


def standard_scenarios(duration_ns: float = 1_500_000.0,
                       seed: int = 0) -> Dict[str, Dict]:
    """Named scenario families covering the hybrid engine's regimes.

    Steady adaptive traffic (where fast-forwarding pays), the static
    baseline (which must never flip — overloaded tenants reject), and
    three fault shapes that force guard windows and splice-backs.
    """
    from repro.sched.serve import mixed_tenant_workload

    def tenants():
        return mixed_tenant_workload(duration_ns=duration_ns, seed=seed)

    third, two_thirds = duration_ns / 3, 2 * duration_ns / 3
    return {
        "adaptive": dict(factory=tenants),
        "static": dict(factory=tenants, adaptive=False),
        "soc-crash": dict(factory=tenants, faults=FaultPlan(
            faults=(SocCrash(at=third),))),
        "crash-recover": dict(factory=tenants, faults=FaultPlan(
            faults=(SocCrash(at=third, recover_at=two_thirds),))),
        "packet-loss": dict(factory=tenants, faults=FaultPlan(
            faults=(PacketLoss("net.server0", 0.02, start=third,
                               end=two_thirds),))),
        # A crash landing just off the middle of a control window — the
        # short-run transient that forces the adaptive guard envelope
        # to re-guard early enough that no analytic in-flight tail
        # straddles the crash instant (ROADMAP 2(a)).
        "fault-transient": dict(factory=tenants, faults=FaultPlan(
            faults=(SocCrash(at=duration_ns * 0.495 + 500.0),))),
    }


def crosscheck_suite(duration_ns: float = 1_500_000.0, seed: int = 0,
                     config: Optional[HybridConfig] = None,
                     scenarios: Optional[Sequence[str]] = None,
                     ) -> Tuple[CrossCheck, ...]:
    """Cross-check every standard scenario family (or a named subset)."""
    families = standard_scenarios(duration_ns=duration_ns, seed=seed)
    if scenarios:
        unknown = set(scenarios) - families.keys()
        if unknown:
            raise ValueError(f"unknown scenario(s) {sorted(unknown)}; "
                             f"choose from {sorted(families)}")
        families = {name: families[name] for name in scenarios}
    results = []
    for name, spec in families.items():
        kwargs = dict(spec)
        factory = kwargs.pop("factory")
        results.append(crosscheck(name, factory, config=config, **kwargs))
    return tuple(results)
