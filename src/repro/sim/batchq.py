"""A batched event queue: amortize ordering across equal timestamps.

Serving workloads are burst-synchronous — scheduler ticks, open-loop
arrivals and fan-out completions land dozens of events on the *same*
nanosecond.  The default :class:`~repro.sim.engine.Simulator` pays a
heap sift per event; :class:`BatchSimulator` instead keeps one heap
entry per *distinct timestamp* and a per-timestamp bucket of packed
``(priority, seq)`` keys, sorted once per batch (C timsort, or a numpy
``argsort`` for large batches when the ``[fast]`` extra is installed —
the scalar path is always available and CI runs it with numpy absent).

The observable event order is identical to the default engine,
including the subtle case of an URGENT event scheduled *at the current
timestamp by a firing event*: the remaining batch is re-merged and
re-sorted so the urgent newcomer still overtakes queued NORMAL events.
``tests/sim/test_batchq.py`` fuzzes this equivalence.

The default engine stays the default — pure-DES bit-identity is pinned
to it — so this class is opt-in for event-dense experiments and the
DES microbench.
"""

from __future__ import annotations

from typing import Any, Optional

import heapq

from repro.sim.engine import Simulator, _SEQ_BITS, _SEQ_MASK
from repro.sim.errors import SimulationError
from repro.sim.events import Event, NORMAL

#: Bucket size from which the numpy key sort takes over (when present).
_VECTOR_MIN = 256

_NUMPY: Any = None
_NUMPY_CHECKED = False


def _load_numpy():
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        try:
            import numpy
            _NUMPY = numpy
        except ImportError:
            _NUMPY = None
        _NUMPY_CHECKED = True
    return _NUMPY


class BatchSimulator(Simulator):
    """Drop-in :class:`Simulator` with a time-bucketed event queue."""

    __slots__ = ("_times", "_buckets")

    def __init__(self):
        super().__init__()
        self._times: list = []       # heap of timestamps (stale dups ok)
        self._buckets: dict = {}     # timestamp -> [(key, event), ...]

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        when = self._now + delay
        key = (priority << _SEQ_BITS) | (self._seq & _SEQ_MASK)
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [(key, event)]
            heapq.heappush(self._times, when)
        else:
            bucket.append((key, event))

    @staticmethod
    def _sort(batch: list) -> None:
        np = _load_numpy()
        if np is not None and len(batch) >= _VECTOR_MIN:
            keys = np.fromiter((key for key, _event in batch),
                               dtype=np.int64, count=len(batch))
            batch[:] = [batch[j] for j in np.argsort(keys, kind="stable")]
        else:
            batch.sort()

    # -- running ------------------------------------------------------------

    def peek(self) -> float:
        times, buckets = self._times, self._buckets
        while times and times[0] not in buckets:
            heapq.heappop(times)             # stale re-push, skip
        return times[0] if times else float("inf")

    def step(self) -> None:
        when = self.peek()
        if when == float("inf"):
            raise SimulationError("step() on an empty event queue")
        batch = self._buckets[when]
        at = min(range(len(batch)), key=lambda j: batch[j][0])
        _key, event = batch.pop(at)
        if not batch:
            del self._buckets[when]
        self._now = when
        self._event_count += 1
        event._fire()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        times, buckets = self._times, self._buckets
        pop = heapq.heappop
        fired = 0
        try:
            while times:
                when = times[0]
                batch = buckets.get(when)
                if batch is None:
                    pop(times)               # stale re-push, skip
                    continue
                if until is not None and when > until:
                    self._now = until
                    return
                pop(times)
                del buckets[when]
                self._now = when
                self._sort(batch)
                i = 0
                while i < len(batch):
                    if max_events is not None and fired >= max_events:
                        rest = batch[i:]
                        extra = buckets.pop(when, None)
                        if extra is not None:
                            rest.extend(extra)
                        if rest:
                            buckets[when] = rest
                            heapq.heappush(times, when)
                        return
                    extra = buckets.pop(when, None)
                    if extra is not None:
                        # A firing event scheduled at the current
                        # timestamp: merge so priorities still win.
                        batch = batch[i:] + extra
                        self._sort(batch)
                        i = 0
                    _key, event = batch[i]
                    i += 1
                    fired += 1
                    event._fire()
        finally:
            self._event_count += fired
        if until is not None:
            self._now = until
