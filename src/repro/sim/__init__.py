"""Discrete-event simulation kernel.

A small, dependency-free SimPy-style engine: an event queue ordered by
simulated time (nanoseconds), coroutine *processes* that ``yield`` events,
and a library of resources (FIFO resources, stores, bandwidth channels)
plus measurement monitors.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name):
...     yield sim.timeout(10)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a"))
>>> _ = sim.process(worker(sim, "b"))
>>> sim.run()
>>> log
[(10.0, 'a'), (10.0, 'b')]
"""

from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError, Interrupt
from repro.sim.events import Event, Timeout, AllOf, AnyOf, URGENT, NORMAL, LOW
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.links import SimplexChannel, DuplexChannel, LOST
from repro.sim.monitor import Counter, RateMeter, Histogram, TimeWeighted
from repro.sim.rng import RandomStreams

__all__ = [
    "Simulator",
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "URGENT",
    "NORMAL",
    "LOW",
    "Process",
    "Resource",
    "Store",
    "SimplexChannel",
    "DuplexChannel",
    "LOST",
    "Counter",
    "RateMeter",
    "Histogram",
    "TimeWeighted",
    "RandomStreams",
]
