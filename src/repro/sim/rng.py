"""Deterministic, named random streams.

Every stochastic component draws from its own named substream so that
adding a component never perturbs the draws of another — runs stay
reproducible as the model grows.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A family of independent :class:`random.Random` streams under one seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``; created deterministically on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "RandomStreams":
        """A derived family, e.g. per-machine sub-families."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
