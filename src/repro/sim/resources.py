"""Shared resources: counted resources and FIFO item stores."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, TYPE_CHECKING

from repro.sim.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class ResourceRequest(Event):
    """A pending :meth:`Resource.request` grant.

    Carries a ``_withdraw`` hook so that interrupting a process waiting
    on the grant returns the queued request (or an already-granted but
    never-used unit) to the resource instead of leaking capacity.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def _withdraw(self) -> None:
        if not self.triggered:
            try:
                self.resource._waiters.remove(self)
            except ValueError:  # pragma: no cover - already granted/raced
                pass
        else:
            # Granted, but the waiter is gone: hand the unit onward.
            self.resource.release()


class Resource:
    """A counted resource with FIFO granting.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted units."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiters)

    def request(self) -> Event:
        """An event that fires when one unit is granted to the caller."""
        grant = ResourceRequest(self)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            grant.succeed()
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return one unit; hands it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class StoreGet(Event):
    """A pending :meth:`Store.get`; withdrawable on interrupt."""

    __slots__ = ("store",)

    def __init__(self, store: "Store"):
        super().__init__(store.sim)
        self.store = store

    def _withdraw(self) -> None:
        if not self.triggered:
            try:
                self.store._getters.remove(self)
            except ValueError:  # pragma: no cover - already served/raced
                pass
        else:
            # The item was already handed over; put it back at the head
            # (or straight to the next waiting getter).
            self.store._requeue_front(self._value)


class StorePut(Event):
    """A pending :meth:`Store.put`; withdrawable on interrupt."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.store = store
        self.item = item

    def _withdraw(self) -> None:
        if not self.triggered:
            try:
                self.store._putters.remove((self, self.item))
            except ValueError:  # pragma: no cover - already accepted/raced
                pass
        # Once triggered the item is in the store; nothing to undo.


class Store:
    """An unbounded-or-bounded FIFO queue of items with blocking get/put."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Fires once the item is accepted (immediately unless full)."""
        done = StorePut(self, item)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            done.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            done.succeed()
        else:
            self._putters.append((done, item))
        return done

    def get(self) -> Event:
        """Fires with the oldest item once one is available."""
        got = StoreGet(self)
        if self._items:
            got.succeed(self._items.popleft())
            if self._putters:
                done, item = self._putters.popleft()
                self._items.append(item)
                done.succeed()
        else:
            self._getters.append(got)
        return got

    def drain(self) -> list:
        """Remove and return every queued item, oldest first.

        Waiting getters stay parked; blocked putters (bounded stores)
        are admitted into the freed capacity exactly as if a getter had
        consumed their way in.  The hybrid engine uses this to move a
        queue's backlog into the analytic recurrence without waking the
        workers that are blocked on :meth:`get`.
        """
        items = list(self._items)
        self._items.clear()
        while self._putters and len(self._items) < self.capacity:
            done, item = self._putters.popleft()
            self._items.append(item)
            done.succeed()
        return items

    def _requeue_front(self, item: Any) -> None:
        """Return a handed-out item (withdrawn getter) to the queue head."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.appendleft(item)
