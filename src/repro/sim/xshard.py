"""Cross-shard traffic fabric: messages between lockstep shards.

:mod:`repro.sim.shard` runs one serving machine per shard in
conservative time-windowed lockstep.  This module is the layer that
lets those machines *talk*: a tenant, relay or shipper on one shard
sends a :class:`ShardMessage` to an endpoint on another shard, and the
lockstep protocol guarantees **one-window delivery** — a message sent
during window *W* is injected into the receiving shard's event queue
during window *W+1*, at its physical arrival instant
(``send_ns + link latency``) with URGENT priority.

The guarantee holds because the barrier protocol only exchanges
messages at window boundaries: as long as every inter-shard link's
latency is at least ``sync_window_ns`` (validated by
:func:`repro.sim.shard.run_sharded`), no message can need to arrive
inside the window it was sent in, so advancing all shards one window at
a time never delivers late.  ``jobs=1`` runs the identical exchange
in-process and is the bit-identity reference for the multiprocess path.

Pieces:

* :class:`ShardTopology` — inter-shard link latencies (uniform by
  default; derivable from a testbed's fabric spec).
* :class:`CrossTraffic` — a declarative export: which tenant's traffic
  leaves its home shard, to where, and how (``"bulk"`` completion
  shipping or ``"failover"`` remote host-ward relay).
* :class:`ShardChannel` — the per-shard endpoint: apps send through
  it, the lockstep driver drains its outbox at each barrier and hands
  it inbound messages to inject.
* :class:`ShardRouter` — the parent-side exchange: routes collected
  outboxes to destination inboxes in a deterministic order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.events import URGENT
from repro.sim.links import LOST
from repro.sim.resources import Resource
from repro.units import gib_per_s

#: Default inter-shard one-way latency: two machines in different racks
#: behind the load-balancer tier — several switch traversals plus cable
#: runs, not the single-switch 310 ns of the paper's testbed fabric.
DEFAULT_LINK_LATENCY_NS = 25_000.0

#: Host-relay service parallelism for *inbound* cross-shard work: how
#: many remote relay/bulk transfers a host absorbs concurrently.
_RELAY_UNITS = 4

#: Remote relay throughput (host DRAM memcpy), matching the local
#: degraded relay in :mod:`repro.sched.runtime`.
_RELAY_GIBPS = 16.0

_KINDS = ("bulk", "failover")


@dataclass(frozen=True)
class CrossTraffic:
    """One tenant's cross-shard export.

    * ``kind="bulk"`` — every successful completion ships its payload
      to ``dst_shard``'s host (asynchronous offload shipping; the
      request latency is unaffected, the remote host pays service and
      an ack travels back for round-trip accounting).
    * ``kind="failover"`` — while the tenant's lease is *degraded*
      (its SoC crashed), relay requests are served by ``dst_shard``'s
      host instead of the local one: the worker blocks until the
      remote ack, so request latency includes two link traversals and
      the remote relay service.
    """

    tenant: str
    dst_shard: str
    kind: str = "bulk"

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown cross-traffic kind {self.kind!r}; "
                             f"expected one of {_KINDS}")


@dataclass(frozen=True)
class ShardTopology:
    """Inter-shard link latencies, ns.  Uniform unless overridden."""

    shards: Tuple[str, ...]
    link_latency_ns: float = DEFAULT_LINK_LATENCY_NS
    #: Optional per-link override: {(src, dst): latency_ns}.
    overrides: Mapping[Tuple[str, str], float] = field(default_factory=dict)
    #: Load-balancer node, if any.  The LB is a topology node like any
    #: other (so links to/from it have latencies and ctl messages can
    #: be addressed from it) but it hosts no serving machine: no shard
    #: worker runs for it and no cross-shard *traffic* transits it, so
    #: its links are excluded from the ``sync_window_ns`` derivation —
    #: see :meth:`min_fabric_latency_ns`.
    lb: Optional[str] = None

    def __post_init__(self):
        if len(set(self.shards)) != len(self.shards):
            raise ValueError(f"duplicate shard names: {list(self.shards)}")
        if self.link_latency_ns <= 0:
            raise ValueError(
                f"link latency must be positive: {self.link_latency_ns}")
        if self.lb is not None and self.lb not in self.shards:
            raise ValueError(f"lb {self.lb!r} not in topology "
                             f"{list(self.shards)}")
        for (src, dst), latency in self.overrides.items():
            for name in (src, dst):
                if name not in self.shards:
                    raise ValueError(f"override names unknown shard {name!r}")
            if latency <= 0:
                raise ValueError(
                    f"override {src!r}->{dst!r} must be positive: {latency}")

    @classmethod
    def uniform(cls, shards: Sequence[str],
                link_latency_ns: float = DEFAULT_LINK_LATENCY_NS,
                ) -> "ShardTopology":
        return cls(shards=tuple(shards), link_latency_ns=link_latency_ns)

    @classmethod
    def from_testbed(cls, testbed, shards: Sequence[str],
                     hops: int = 3) -> "ShardTopology":
        """Derive link latency from the testbed fabric: ``hops``
        switch+cable traversals between two machines' ports."""
        if hops < 1:
            raise ValueError(f"need >= 1 fabric hop: {hops}")
        return cls(shards=tuple(shards),
                   link_latency_ns=hops * testbed.fabric.one_way_latency())

    def latency_ns(self, src: str, dst: str) -> float:
        for name in (src, dst):
            if name not in self.shards:
                raise KeyError(f"unknown shard {name!r}")
        return self.overrides.get((src, dst), self.link_latency_ns)

    def min_latency_ns(self) -> float:
        """The tightest link anywhere in the topology, LB hops included."""
        latencies = [self.latency_ns(s, d) for s in self.shards
                     for d in self.shards if s != d]
        return min(latencies) if latencies else self.link_latency_ns

    @property
    def fabric_shards(self) -> Tuple[str, ...]:
        """The shards that run serving machines (everything but the LB)."""
        return tuple(s for s in self.shards if s != self.lb)

    def min_fabric_latency_ns(self) -> float:
        """The tightest *machine-to-machine* link — the real ceiling for
        ``sync_window_ns``.

        One-window delivery requires every link that carries messages
        sent *mid-window* to be at least one window long.  Machine
        links carry such traffic (relays, bulk shipping, acks fire at
        arbitrary sim instants), so they bound the window.  LB links do
        not: the only LB-originated messages are control directives the
        lockstep parent injects *at barriers* (sender clock == barrier),
        so any positive LB latency lands them strictly inside the next
        window.  Deriving the window from :meth:`min_latency_ns` would
        let a fast LB hop needlessly narrow it — more barriers, same
        results.
        """
        fabric = self.fabric_shards
        latencies = [self.latency_ns(s, d) for s in fabric
                     for d in fabric if s != d]
        return min(latencies) if latencies else self.link_latency_ns


@dataclass(frozen=True)
class ShardMessage:
    """One cross-shard datagram (picklable plain data).

    ``deliver_ns`` is stamped at send time: ``send_ns`` plus the link
    latency.  ``msg_id`` is unique per (shard, channel) and carries the
    correlation for acks (``reply_to``).
    """

    src: str
    dst: str
    kind: str                    # "bulk" | "relay" | "ack" | "ctl"
    tenant: str
    nbytes: int
    send_ns: float
    deliver_ns: float
    msg_id: int
    reply_to: Optional[int] = None
    origin_send_ns: float = 0.0  # acks: the original request's send_ns
    #: Control payload for ``kind="ctl"`` directives from the cluster
    #: scheduler ("serve-on:<machine>" / "serve-local"); empty for data
    #: messages.  Defaulted so pre-existing window checkpoints (which
    #: round-trip messages through ``dataclasses.asdict``) still load.
    note: str = ""

    def sort_key(self) -> tuple:
        return (self.deliver_ns, self.src, self.msg_id)


class ShardChannel:
    """One shard's endpoint on the cross-shard fabric.

    Installed into a :class:`~repro.sched.serve.ServeSession`; the
    lockstep driver calls :meth:`collect` at each barrier and
    :meth:`deliver` with the messages routed to this shard.  All
    counter surfaces go through ``cluster.bump`` so they land in the
    merged report's telemetry like any other shard counter.
    """

    def __init__(self, shard: str, topology: ShardTopology,
                 exports: Mapping[str, CrossTraffic] = (),
                 injector=None, fault_timeout_ns: Optional[float] = None):
        if shard not in topology.shards:
            raise ValueError(f"shard {shard!r} not in topology "
                             f"{list(topology.shards)}")
        if fault_timeout_ns is not None and fault_timeout_ns <= 0:
            raise ValueError(
                f"fault timeout must be positive: {fault_timeout_ns}")
        self.shard = shard
        self.topology = topology
        #: Cluster-fault liveness oracle (a
        #: :class:`repro.faults.cluster.ClusterInjector`), or ``None``
        #: when the run has no cluster fault plan.
        self.injector = injector
        #: Ack timeout, ns.  ``None`` (the default) means the fabric is
        #: trusted: senders wait forever, exactly the pre-fault
        #: behavior.  Armed only when a cluster fault plan can actually
        #: drop messages.
        self.fault_timeout_ns = fault_timeout_ns
        self.exports: Dict[str, CrossTraffic] = dict(exports or {})
        for name, export in self.exports.items():
            if export.tenant != name:
                raise ValueError(
                    f"export key {name!r} != export tenant "
                    f"{export.tenant!r}")
            if export.dst_shard == shard:
                raise ValueError(
                    f"tenant {name!r} exports to its own shard {shard!r}")
        self._outbox: List[ShardMessage] = []
        self._ids = itertools.count(1)
        self._waiters: Dict[int, object] = {}   # msg_id -> sim Event
        self._session = None                    # bound by ServeSession
        self._relay: Optional[Resource] = None
        # Flow-conservation counts for the supervisor's watchdog:
        # every message sent must end up handed over by the router,
        # still pending in it, or dropped by the cluster injector.
        self.sent_count = 0
        self.handed_count = 0
        self.fired_count = 0
        self.timeout_count = 0
        # Load surfaces for the cluster scheduler's heartbeat digest:
        # inbound work served here, acks seen, and accumulated RTT.
        self.served_count = 0
        self.acked_count = 0
        self.rtt_ns_total = 0.0

    # -- session binding ----------------------------------------------------

    def bind(self, session) -> "ShardChannel":
        """Attach to a live session (one channel per session)."""
        if self._session is not None:
            raise ValueError("channel already bound to a session")
        self._session = session
        self._relay = Resource(session.cluster.sim, capacity=_RELAY_UNITS)
        return self

    @property
    def sim(self):
        return self._session.cluster.sim

    @property
    def cluster(self):
        return self._session.cluster

    @property
    def idle(self) -> bool:
        """No queued outbound messages and no requests awaiting acks."""
        return not self._outbox and not self._waiters

    # -- sending ------------------------------------------------------------

    def _post(self, dst: str, kind: str, tenant: str, nbytes: int,
              reply_to: Optional[int] = None,
              origin_send_ns: float = 0.0) -> ShardMessage:
        now = self.sim.now
        message = ShardMessage(
            src=self.shard, dst=dst, kind=kind, tenant=tenant,
            nbytes=nbytes, send_ns=now,
            deliver_ns=now + self.topology.latency_ns(self.shard, dst),
            msg_id=next(self._ids), reply_to=reply_to,
            origin_send_ns=origin_send_ns)
        self._outbox.append(message)
        self.sent_count += 1
        self.cluster.bump("xshard.sent")
        self.cluster.bump("xshard.sent_bytes", nbytes)
        return message

    def ship_bulk(self, tenant: str, dst: str, nbytes: int) -> None:
        """Asynchronous completion shipping (kind="bulk")."""
        message = self._post(dst, "bulk", tenant, nbytes)
        self._waiters[message.msg_id] = None     # ack expected, nobody waits
        self._arm_timeout(message.msg_id)

    def relay_request(self, tenant: str, dst: str, nbytes: int):
        """Remote host-ward relay: returns the event the worker waits
        on; it succeeds at the instant the remote ack is delivered —
        or, on a faulted fabric, with :data:`~repro.sim.links.LOST`
        when the ack timeout expires."""
        message = self._post(dst, "relay", tenant, nbytes)
        event = self.sim.event()
        self._waiters[message.msg_id] = event
        self._arm_timeout(message.msg_id)
        self.cluster.bump("xshard.relay_requests")
        return event

    def _arm_timeout(self, msg_id: int) -> None:
        if self.fault_timeout_ns is not None:
            self.sim.process(self._expire(msg_id))

    def _expire(self, msg_id: int):
        yield self.sim.timeout(self.fault_timeout_ns)
        if msg_id not in self._waiters:
            return                               # acked in time
        waiter = self._waiters.pop(msg_id)
        self.timeout_count += 1
        self.cluster.bump("xshard.timeouts")
        if waiter is not None:
            waiter.succeed(LOST)

    # -- cluster-fault oracle ------------------------------------------------

    def machine_down(self, now: Optional[float] = None) -> bool:
        """Whether *this* shard's machine is dead right now (always
        ``False`` without a cluster fault plan)."""
        if self.injector is None:
            return False
        return self.injector.machine_down(
            self.shard, self.sim.now if now is None else now)

    def failover_dst(self, export: CrossTraffic) -> Optional[str]:
        """Where a ``"failover"`` relay should go, honoring liveness.

        Without a cluster plan this is simply the export's configured
        destination.  With one, a dead destination machine is replaced
        by the first surviving shard in fabric order
        (:meth:`repro.sched.policy.PathPolicy.surviving_host`); ``None``
        means no machine survives and the caller must fall back to the
        local relay."""
        if self.injector is None:
            return export.dst_shard
        from repro.sched.policy import PathPolicy
        now = self.sim.now
        # Fabric shards only: the LB node runs no serving machine, so a
        # relay routed there would never be taken and would wedge.
        candidates = [s for s in self.topology.fabric_shards
                      if s != self.shard
                      and not self.injector.machine_down(s, now)]
        dst = PathPolicy.surviving_host(export.dst_shard, candidates)
        if dst is not None and dst != export.dst_shard:
            self.cluster.bump("xshard.rerouted")
        return dst

    # -- barrier protocol ---------------------------------------------------

    def collect(self) -> List[ShardMessage]:
        """Drain the outbox (called by the lockstep driver at barriers)."""
        out, self._outbox = self._outbox, []
        return out

    def deliver(self, messages: Sequence[ShardMessage]) -> None:
        """Inject inbound messages (already routed to this shard).

        Messages must be pre-sorted by :meth:`ShardMessage.sort_key`;
        each is scheduled as an URGENT arrival at its ``deliver_ns``
        (always in the upcoming window — the one-window guarantee).
        """
        sim = self.sim
        for message in messages:
            if message.dst != self.shard:       # pragma: no cover - misroute
                raise ValueError(f"message for {message.dst!r} delivered "
                                 f"to {self.shard!r}")
            self.handed_count += 1
            sim.process(self._receive(message))

    def flow_counts(self) -> Tuple[int, int, int, int]:
        """``(sent, handed, fired, timeouts)`` for the watchdog."""
        return (self.sent_count, self.handed_count, self.fired_count,
                self.timeout_count)

    def _receive(self, message: ShardMessage):
        delay = message.deliver_ns - self.sim.now
        if delay < 0:                           # pragma: no cover - guarded
            raise ValueError(
                f"late delivery: {message} at {self.sim.now} "
                "(sync window wider than the link latency?)")
        yield self.sim.timeout(delay, priority=URGENT)
        self.fired_count += 1
        self.cluster.bump("xshard.delivered")
        if message.kind == "ack":
            self._on_ack(message)
            return
        if message.kind == "ctl":
            # Cluster-scheduler directive: applied instantly (no relay
            # service, no ack — the scheduler observes effects through
            # the next heartbeat, not a reply).
            self.cluster.bump("xshard.ctl")
            self._session.apply_directive(message)
            return
        # Inbound work: occupy the host relay for a CPU dispatch plus a
        # DRAM-speed copy, then ack back to the sender.
        yield self._relay.request()
        try:
            host = self.cluster.node("host")
            service = (host.cpu.two_sided_latency_ns
                       + max(1, message.nbytes) / gib_per_s(_RELAY_GIBPS))
            yield self.sim.timeout(service)
        finally:
            self._relay.release()
        self.served_count += 1
        self.cluster.bump("xshard.served")
        self.cluster.bump("xshard.served_bytes", message.nbytes)
        self._post(message.src, "ack", message.tenant, 0,
                   reply_to=message.msg_id, origin_send_ns=message.send_ns)

    def _on_ack(self, message: ShardMessage) -> None:
        waiter = self._waiters.pop(message.reply_to, None)
        self.acked_count += 1
        self.rtt_ns_total += self.sim.now - message.origin_send_ns
        self.cluster.bump("xshard.acked")
        self.cluster.bump("xshard.rtt_ns_total",
                          self.sim.now - message.origin_send_ns)
        if waiter is not None:
            waiter.succeed(self.sim.now)


class ShardRouter:
    """Parent-side exchange: collected outboxes -> per-shard inboxes.

    Deterministic regardless of collection order: each inbox is sorted
    by ``(deliver_ns, src, msg_id)`` so in-process and multiprocess
    lockstep inject identical event sequences.
    """

    def __init__(self, topology: ShardTopology):
        self.topology = topology
        self._pending: Dict[str, List[ShardMessage]] = {}
        self.routed = 0

    def route(self, messages: Sequence[ShardMessage]) -> None:
        for message in messages:
            if message.dst not in self.topology.shards:
                raise KeyError(f"message to unknown shard {message.dst!r}")
            self._pending.setdefault(message.dst, []).append(message)
            self.routed += 1

    def take(self, shard: str) -> List[ShardMessage]:
        """The sorted inbox for ``shard``, consumed."""
        inbox = self._pending.pop(shard, [])
        inbox.sort(key=ShardMessage.sort_key)
        return inbox

    @property
    def in_flight(self) -> bool:
        return bool(self._pending)

    @property
    def pending_count(self) -> int:
        """Messages routed but not yet taken, total."""
        return sum(len(msgs) for msgs in self._pending.values())

    def pending_by_shard(self) -> Dict[str, int]:
        """Per-destination pending counts (for wedge diagnostics)."""
        return {shard: len(msgs) for shard, msgs in self._pending.items()}
