"""Measurement primitives: counters, rate meters, histograms."""

from __future__ import annotations

import math
from typing import List, Optional


class Counter:
    """A monotonically accumulating counter."""

    __slots__ = ("total", "events")

    def __init__(self):
        self.total: float = 0.0
        self.events: int = 0

    def add(self, amount: float = 1.0) -> None:
        self.total += amount
        self.events += 1

    def reset(self) -> None:
        self.total = 0.0
        self.events = 0


class RateMeter:
    """Counts events over a window of simulated time, yielding a rate.

    The caller marks the window with :meth:`start` / :meth:`stop` (or just
    queries :meth:`rate` with an explicit ``now``).
    """

    __slots__ = ("count", "volume", "_started_at", "_stopped_at")

    def __init__(self):
        self.count: int = 0
        self.volume: float = 0.0
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    def start(self, now: float) -> None:
        self.count = 0
        self.volume = 0.0
        self._started_at = now
        self._stopped_at = None

    def record(self, volume: float = 0.0) -> None:
        self.count += 1
        self.volume += volume

    def stop(self, now: float) -> None:
        self._stopped_at = now

    def elapsed(self, now: Optional[float] = None) -> float:
        if self._started_at is None:
            return 0.0
        end = self._stopped_at if self._stopped_at is not None else now
        if end is None:
            raise ValueError("RateMeter still running: pass `now`")
        return max(0.0, end - self._started_at)

    def rate(self, now: Optional[float] = None) -> float:
        """Events per ns over the window (0 when the window is empty)."""
        elapsed = self.elapsed(now)
        return self.count / elapsed if elapsed > 0 else 0.0

    def throughput(self, now: Optional[float] = None) -> float:
        """Volume per ns over the window (bytes/ns when volume is bytes)."""
        elapsed = self.elapsed(now)
        return self.volume / elapsed if elapsed > 0 else 0.0


class Histogram:
    """Stores raw samples; supports mean/percentiles.  Fine for <=1e6 samples."""

    __slots__ = ("samples",)

    def __init__(self):
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples)

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else math.nan

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else math.nan

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)


class TimeWeighted:
    """Tracks a piecewise-constant value's time-weighted average."""

    __slots__ = ("_value", "_last_change", "_weighted_sum", "_origin")

    def __init__(self, initial: float = 0.0, now: float = 0.0):
        self._value = initial
        self._last_change = now
        self._weighted_sum = 0.0
        self._origin = now

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float, now: float) -> None:
        if now < self._last_change:
            raise ValueError("time went backwards")
        self._weighted_sum += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def add(self, delta: float, now: float) -> None:
        self.set(self._value + delta, now)

    def average(self, now: float) -> float:
        elapsed = now - self._origin
        if elapsed <= 0:
            return self._value
        pending = self._value * (now - self._last_change)
        return (self._weighted_sum + pending) / elapsed
