"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for kernel misuse (double-trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.process.Process.interrupt`.

    The interrupted process may catch it and clean up; the ``cause``
    attribute carries whatever the interrupter passed along.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause
