"""Sharded serving simulation: clusters on worker processes.

A serving run models one server and its clients; a datacenter-scale
experiment is many such machines.  Each machine is a *shard* with its
own event timeline; shards execute on separate worker processes and
merge afterwards.

The execution protocol is conservative time-windowed lockstep: the
parent advances every shard to the same simulated-time barrier
(``sync_window_ns``) before any shard may move past it.  Shards may
now exchange traffic through the cross-shard fabric
(:mod:`repro.sim.xshard`): outboxes are collected at every barrier,
routed by a :class:`~repro.sim.xshard.ShardRouter`, and injected into
the destination shard at the start of the next round as URGENT arrivals
at their physical delivery instants.  The **one-window delivery
guarantee** — a message sent in window *W* is delivered in window
*W+1* — holds iff every inter-shard link latency is at least
``sync_window_ns``; :func:`run_sharded` validates exactly that.
``jobs=1`` runs the same lockstep (and the same barrier exchange)
in-process — the bit-identity reference for the multiprocess path,
asserted by ``tests/sim/test_shard.py``.

Merging uses :meth:`repro.sched.slo.SloTracker.merge` for the SLO
windows, concatenates decision logs in time order, and sums per-path
bandwidth and telemetry counters (including the ``xshard.*`` fabric
counters).  ``elapsed_ns`` is the maximum over shards and is rounded
up to the sync window (documented divergence from an unsharded run;
per-tenant latencies and counts are exact).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.sched.serve import ServeReport, ServeSession
from repro.sched.slo import SloTracker
from repro.sched.tenant import TenantSpec
from repro.sim.xshard import (CrossTraffic, ShardChannel, ShardRouter,
                              ShardTopology)


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a tenant set (and optional faults) on its own cluster.

    ``exports`` declares which of this shard's tenants send traffic to
    other machines (see :class:`~repro.sim.xshard.CrossTraffic`); the
    plan must then carry (or default) a topology whose link latencies
    admit the chosen sync window.
    """

    name: str
    tenants: Tuple[TenantSpec, ...]
    faults: Optional[FaultPlan] = None
    fault_seed: int = 0
    exports: Tuple[CrossTraffic, ...] = ()

    def __post_init__(self):
        if not self.tenants:
            raise ValueError(f"shard {self.name!r} has no tenants")
        names = {t.name for t in self.tenants}
        seen = set()
        for export in self.exports:
            if export.tenant not in names:
                raise ValueError(
                    f"shard {self.name!r} exports unknown tenant "
                    f"{export.tenant!r}")
            if export.tenant in seen:
                raise ValueError(
                    f"shard {self.name!r} exports tenant "
                    f"{export.tenant!r} twice")
            seen.add(export.tenant)
            if export.dst_shard == self.name:
                raise ValueError(
                    f"shard {self.name!r} exports {export.tenant!r} "
                    "to itself")

    def export_map(self) -> Dict[str, CrossTraffic]:
        return {export.tenant: export for export in self.exports}


@dataclass(frozen=True)
class ShardPlan:
    """An ordered set of shards with globally unique tenant names.

    ``topology`` gives the inter-shard link latencies; when omitted and
    any shard exports traffic, :func:`run_sharded` defaults to a
    uniform :class:`~repro.sim.xshard.ShardTopology`.
    """

    shards: Tuple[ShardSpec, ...]
    topology: Optional[ShardTopology] = None

    def __post_init__(self):
        if not self.shards:
            raise ValueError("plan needs at least one shard")
        shard_names = [shard.name for shard in self.shards]
        if len(set(shard_names)) != len(shard_names):
            raise ValueError(
                f"duplicate shard names: {shard_names} — tenants must "
                "not overlap machines")
        seen: Dict[str, str] = {}
        for shard in self.shards:
            for spec in shard.tenants:
                if spec.name in seen:
                    raise ValueError(
                        f"tenant {spec.name!r} appears in shards "
                        f"{seen[spec.name]!r} and {shard.name!r}")
                seen[spec.name] = shard.name
        for shard in self.shards:
            for export in shard.exports:
                if export.dst_shard not in shard_names:
                    raise ValueError(
                        f"shard {shard.name!r} exports "
                        f"{export.tenant!r} to unknown shard "
                        f"{export.dst_shard!r}")
        if self.topology is not None:
            missing = set(shard_names) - set(self.topology.shards)
            if missing:
                raise ValueError(
                    f"topology is missing shard(s) {sorted(missing)}")

    @property
    def cross_traffic(self) -> bool:
        return any(shard.exports for shard in self.shards)

    def resolved_topology(self) -> Optional[ShardTopology]:
        """The topology to run under (uniform default when exporting)."""
        if self.topology is not None:
            return self.topology
        if self.cross_traffic:
            return ShardTopology.uniform([s.name for s in self.shards])
        return None

    @classmethod
    def partition(cls, tenants: Sequence[TenantSpec],
                  n_shards: int) -> "ShardPlan":
        """Round-robin the tenants over ``n_shards`` shards."""
        if n_shards < 1:
            raise ValueError(f"need >= 1 shard, got {n_shards}")
        tenants = tuple(tenants)
        n_shards = min(n_shards, len(tenants))
        groups: List[List[TenantSpec]] = [[] for _ in range(n_shards)]
        for i, spec in enumerate(tenants):
            groups[i % n_shards].append(spec)
        return cls(shards=tuple(
            ShardSpec(name=f"shard{i}", tenants=tuple(group))
            for i, group in enumerate(groups)))


def _make_session(shard: ShardSpec, serve_kwargs: dict,
                  topology: Optional[ShardTopology]) -> ServeSession:
    channel = None
    if topology is not None:
        channel = ShardChannel(shard.name, topology, shard.export_map())
    return ServeSession(shard.tenants, faults=shard.faults,
                        fault_seed=shard.fault_seed, channel=channel,
                        **serve_kwargs)


def _shard_worker(conn, shard: ShardSpec, serve_kwargs: dict,
                  topology: Optional[ShardTopology]) -> None:
    """Child-process loop: advance on command, report when asked.

    Each ``advance`` carries the barrier and this shard's routed
    inbound messages; the reply carries the session's drained state,
    the channel's idleness, and the window's outbox.
    """
    try:
        session = _make_session(shard, serve_kwargs, topology)
        channel = session.channel
        while True:
            message = conn.recv()
            if message[0] == "advance":
                _cmd, barrier, inbound = message
                if channel is not None and inbound:
                    channel.deliver(inbound)
                done = session.advance(barrier)
                outbox = channel.collect() if channel is not None else []
                idle = channel.idle if channel is not None else True
                conn.send(("ok", done, idle, outbox))
            elif message[0] == "report":
                conn.send(("report", session.finalize(), session.tracker))
                return
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown command {message[0]!r}")
    except Exception as exc:  # pragma: no cover - surfaced in parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _wedged(done: Sequence[bool], idle: Sequence[bool],
            router: ShardRouter, moved: bool) -> bool:
    """A round where nothing can ever make progress again.

    Every shard is drained, no messages moved or are pending, yet some
    channel still awaits an ack — the event that would deliver it can
    no longer be generated anywhere.
    """
    return (all(done) and not moved and not router.in_flight
            and not all(idle))


def _run_lockstep_inprocess(shards: Sequence[ShardSpec],
                            serve_kwargs: dict, sync_window_ns: float,
                            topology: Optional[ShardTopology]):
    sessions = [_make_session(shard, serve_kwargs, topology)
                for shard in shards]
    if topology is None:
        barrier = 0.0
        while not all(session.done for session in sessions):
            barrier += sync_window_ns
            for session in sessions:
                session.advance(barrier)
        return ([session.finalize() for session in sessions],
                [session.tracker for session in sessions])

    router = ShardRouter(topology)
    channels = [session.channel for session in sessions]
    barrier = 0.0
    while True:
        done = [session.done for session in sessions]
        idle = [channel.idle for channel in channels]
        if all(done) and all(idle) and not router.in_flight:
            break
        barrier += sync_window_ns
        # Two passes per round so a shard never sees a message sent in
        # the *same* round (matching the concurrent multiprocess
        # exchange): deliver + advance everywhere first, collect after.
        inboxes = [router.take(shard.name) for shard in shards]
        moved = any(inboxes)
        for channel, inbox, session in zip(channels, inboxes, sessions):
            if inbox:
                channel.deliver(inbox)
            session.advance(barrier)
        for channel in channels:
            outbox = channel.collect()
            moved = moved or bool(outbox)
            router.route(outbox)
        if _wedged([s.done for s in sessions],
                   [c.idle for c in channels], router, moved):
            raise RuntimeError(
                "cross-shard fabric wedged: un-acked messages with no "
                "shard able to make progress")
    return ([session.finalize() for session in sessions],
            [session.tracker for session in sessions])


def _run_lockstep_multiprocess(shards: Sequence[ShardSpec],
                               serve_kwargs: dict, sync_window_ns: float,
                               jobs: int,
                               topology: Optional[ShardTopology]):
    ctx = multiprocessing.get_context()
    router = ShardRouter(topology) if topology is not None else None
    workers = []
    try:
        for shard in shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_shard_worker,
                               args=(child_conn, shard, serve_kwargs,
                                     topology),
                               daemon=True)
            proc.start()
            child_conn.close()
            workers.append((shard, proc, parent_conn))

        def ask(conn, *message):
            conn.send(message)
            reply = conn.recv()
            if reply[0] == "error":
                raise RuntimeError(f"shard worker failed: {reply[1]}")
            return reply

        barrier = 0.0
        done = [False] * len(workers)
        idle = [True] * len(workers)
        while True:
            if all(done) and all(idle) and (router is None
                                            or not router.in_flight):
                break
            barrier += sync_window_ns
            # One barrier round: every live shard gets the new horizon
            # (and its inbound messages) before any reply is awaited,
            # so shards advance in parallel.
            live = []
            moved = False
            for i, (shard, _proc, conn) in enumerate(workers):
                inbound = router.take(shard.name) if router else []
                moved = moved or bool(inbound)
                if router is None and done[i]:
                    continue        # independent shard fully drained
                conn.send(("advance", barrier, inbound))
                live.append(i)
            for i in live:
                reply = workers[i][2].recv()
                if reply[0] == "error":
                    raise RuntimeError(f"shard worker failed: {reply[1]}")
                _tag, done[i], idle[i], outbox = reply
                if router is not None and outbox:
                    moved = True
                    router.route(outbox)
            if router is not None and _wedged(done, idle, router, moved):
                raise RuntimeError(
                    "cross-shard fabric wedged: un-acked messages with "
                    "no shard able to make progress")
        reports, trackers = [], []
        for _shard, _proc, conn in workers:
            _tag, report, tracker = ask(conn, "report")
            reports.append(report)
            trackers.append(tracker)
        return reports, trackers
    finally:
        for _shard, proc, conn in workers:
            conn.close()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()


def merge_reports(reports: Sequence[ServeReport],
                  trackers: Sequence[SloTracker]) -> ServeReport:
    """Fold per-shard reports (and trackers) into one cluster view."""
    if not reports:
        raise ValueError("nothing to merge")
    merged_tracker = trackers[0]
    for tracker in trackers[1:]:
        merged_tracker.merge(tracker)
    tenants: Dict[str, object] = {}
    for report in reports:
        overlap = tenants.keys() & report.tenants.keys()
        if overlap:
            raise ValueError(f"tenant(s) {sorted(overlap)} in two shards")
        tenants.update(report.tenants)
    # The merged tracker is the ground truth for totals; per-shard
    # reports must agree with it exactly.
    for name, tenant in tenants.items():
        if merged_tracker.completed[name] != tenant.completed:
            raise AssertionError(
                f"merge drift for {name!r}: tracker says "
                f"{merged_tracker.completed[name]}, report {tenant.completed}")
    decisions = sorted((d for report in reports for d in report.decisions),
                       key=lambda d: d.time_ns)
    path_gbps: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    for report in reports:
        for path, gbps in report.path_gbps.items():
            path_gbps[path] = path_gbps.get(path, 0.0) + gbps
        for key, value in report.counters.items():
            counters[key] = counters.get(key, 0.0) + value
    hybrid_stats = None
    if any(report.hybrid_stats for report in reports):
        hybrid_stats = {}
        for report in reports:
            for key, value in (report.hybrid_stats or {}).items():
                hybrid_stats[key] = hybrid_stats.get(key, 0) + value
    return ServeReport(
        adaptive=all(report.adaptive for report in reports),
        elapsed_ns=max(report.elapsed_ns for report in reports),
        tenants=tenants,
        decisions=decisions,
        path_gbps=path_gbps,
        counters=counters,
        engine=reports[0].engine,
        hybrid_stats=hybrid_stats,
    )


def run_sharded(plan: ShardPlan, jobs: Optional[int] = None,
                sync_window_ns: Optional[float] = None,
                **serve_kwargs) -> ServeReport:
    """Execute a shard plan and return the merged report.

    ``jobs`` — worker processes (``None``/0 → one per shard; 1 → the
    in-process reference execution).  ``sync_window_ns`` defaults to
    200 µs for independent shards, and to the topology's tightest link
    latency when the plan carries cross-shard traffic; an explicit
    window wider than that latency is rejected — it would silently
    break the one-window delivery guarantee.  ``serve_kwargs`` are
    forwarded to every shard's :class:`~repro.sched.serve.ServeSession`
    (``engine="hybrid"`` composes with sharding; exporting tenants
    stay at event level).  ``trace=True`` is rejected: tracers do not
    serialize across process boundaries.
    """
    topology = plan.resolved_topology()
    if sync_window_ns is None:
        sync_window_ns = (topology.min_latency_ns()
                          if topology is not None else 200_000.0)
    if sync_window_ns <= 0:
        raise ValueError(f"sync window must be positive: {sync_window_ns}")
    if topology is not None and sync_window_ns > topology.min_latency_ns():
        raise ValueError(
            f"sync_window_ns={sync_window_ns} exceeds the shortest "
            f"inter-shard link latency ({topology.min_latency_ns()} ns): "
            "the one-window delivery guarantee would not hold")
    if serve_kwargs.get("trace"):
        raise ValueError("trace=True is not supported for sharded runs")
    for key in ("faults", "fault_seed", "channel"):
        if key in serve_kwargs:
            raise ValueError(f"pass {key!r} per shard via ShardSpec")
    shards = plan.shards
    if jobs is None or jobs == 0:
        jobs = len(shards)
    if jobs <= 1 or len(shards) == 1:
        reports, trackers = _run_lockstep_inprocess(
            shards, serve_kwargs, sync_window_ns, topology)
    else:
        reports, trackers = _run_lockstep_multiprocess(
            shards, serve_kwargs, sync_window_ns, jobs, topology)
    return merge_reports(reports, trackers)
