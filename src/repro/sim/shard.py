"""Sharded serving simulation: independent clusters on worker processes.

A serving run models one server and its clients; a datacenter-scale
experiment is many such machines whose tenants never share a fabric.
Those shards are *independent* — their event timelines only interact
through the (modeled-per-shard) network — so they can execute on
separate worker processes and merge afterwards.

The execution protocol is conservative time-windowed lockstep: the
parent advances every shard to the same simulated-time barrier
(``sync_window_ns``) before any shard may move past it.  With fully
independent shards the barrier is trivially safe at any window size;
it is the protocol under which future cross-shard channels (ROADMAP
item 1) can deliver messages with a one-window delivery guarantee.
``jobs=1`` runs the same lockstep in-process — the bit-identity
reference for the multiprocess path, asserted by
``tests/sim/test_shard.py``.

Merging uses :meth:`repro.sched.slo.SloTracker.merge` for the SLO
windows, concatenates decision logs in time order, and sums per-path
bandwidth and telemetry counters.  ``elapsed_ns`` is the maximum over
shards and is rounded up to the sync window (documented divergence
from an unsharded run; per-tenant latencies and counts are exact).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.sched.serve import ServeReport, ServeSession
from repro.sched.slo import SloTracker
from repro.sched.tenant import TenantSpec


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a tenant set (and optional faults) on its own cluster."""

    name: str
    tenants: Tuple[TenantSpec, ...]
    faults: Optional[FaultPlan] = None
    fault_seed: int = 0

    def __post_init__(self):
        if not self.tenants:
            raise ValueError(f"shard {self.name!r} has no tenants")


@dataclass(frozen=True)
class ShardPlan:
    """An ordered set of shards with globally unique tenant names."""

    shards: Tuple[ShardSpec, ...]

    def __post_init__(self):
        if not self.shards:
            raise ValueError("plan needs at least one shard")
        seen: Dict[str, str] = {}
        for shard in self.shards:
            for spec in shard.tenants:
                if spec.name in seen:
                    raise ValueError(
                        f"tenant {spec.name!r} appears in shards "
                        f"{seen[spec.name]!r} and {shard.name!r}")
                seen[spec.name] = shard.name

    @classmethod
    def partition(cls, tenants: Sequence[TenantSpec],
                  n_shards: int) -> "ShardPlan":
        """Round-robin the tenants over ``n_shards`` shards."""
        if n_shards < 1:
            raise ValueError(f"need >= 1 shard, got {n_shards}")
        tenants = tuple(tenants)
        n_shards = min(n_shards, len(tenants))
        groups: List[List[TenantSpec]] = [[] for _ in range(n_shards)]
        for i, spec in enumerate(tenants):
            groups[i % n_shards].append(spec)
        return cls(shards=tuple(
            ShardSpec(name=f"shard{i}", tenants=tuple(group))
            for i, group in enumerate(groups)))


def _make_session(shard: ShardSpec, serve_kwargs: dict) -> ServeSession:
    return ServeSession(shard.tenants, faults=shard.faults,
                        fault_seed=shard.fault_seed, **serve_kwargs)


def _shard_worker(conn, shard: ShardSpec, serve_kwargs: dict) -> None:
    """Child-process loop: advance on command, report when asked."""
    try:
        session = _make_session(shard, serve_kwargs)
        while True:
            message = conn.recv()
            if message[0] == "advance":
                conn.send(("ok", session.advance(message[1])))
            elif message[0] == "report":
                conn.send(("report", session.finalize(), session.tracker))
                return
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown command {message[0]!r}")
    except Exception as exc:  # pragma: no cover - surfaced in parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _run_lockstep_inprocess(shards: Sequence[ShardSpec],
                            serve_kwargs: dict, sync_window_ns: float):
    sessions = [_make_session(shard, serve_kwargs) for shard in shards]
    barrier = 0.0
    while not all(session.done for session in sessions):
        barrier += sync_window_ns
        for session in sessions:
            session.advance(barrier)
    return ([session.finalize() for session in sessions],
            [session.tracker for session in sessions])


def _run_lockstep_multiprocess(shards: Sequence[ShardSpec],
                               serve_kwargs: dict, sync_window_ns: float,
                               jobs: int):
    ctx = multiprocessing.get_context()
    workers = []
    try:
        for shard in shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_shard_worker,
                               args=(child_conn, shard, serve_kwargs),
                               daemon=True)
            proc.start()
            child_conn.close()
            workers.append((shard, proc, parent_conn))

        def ask(conn, *message):
            conn.send(message)
            reply = conn.recv()
            if reply[0] == "error":
                raise RuntimeError(f"shard worker failed: {reply[1]}")
            return reply

        barrier = 0.0
        done = [False] * len(workers)
        while not all(done):
            barrier += sync_window_ns
            # One barrier round: every live shard gets the new horizon
            # before any reply is awaited, so shards advance in parallel.
            for i, (_shard, _proc, conn) in enumerate(workers):
                if not done[i]:
                    conn.send(("advance", barrier))
            for i, (_shard, _proc, conn) in enumerate(workers):
                if not done[i]:
                    reply = conn.recv()
                    if reply[0] == "error":
                        raise RuntimeError(
                            f"shard worker failed: {reply[1]}")
                    done[i] = reply[1]
        reports, trackers = [], []
        for _shard, _proc, conn in workers:
            _tag, report, tracker = ask(conn, "report")
            reports.append(report)
            trackers.append(tracker)
        return reports, trackers
    finally:
        for _shard, proc, conn in workers:
            conn.close()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()


def merge_reports(reports: Sequence[ServeReport],
                  trackers: Sequence[SloTracker]) -> ServeReport:
    """Fold per-shard reports (and trackers) into one cluster view."""
    if not reports:
        raise ValueError("nothing to merge")
    merged_tracker = trackers[0]
    for tracker in trackers[1:]:
        merged_tracker.merge(tracker)
    tenants: Dict[str, object] = {}
    for report in reports:
        overlap = tenants.keys() & report.tenants.keys()
        if overlap:
            raise ValueError(f"tenant(s) {sorted(overlap)} in two shards")
        tenants.update(report.tenants)
    # The merged tracker is the ground truth for totals; per-shard
    # reports must agree with it exactly.
    for name, tenant in tenants.items():
        if merged_tracker.completed[name] != tenant.completed:
            raise AssertionError(
                f"merge drift for {name!r}: tracker says "
                f"{merged_tracker.completed[name]}, report {tenant.completed}")
    decisions = sorted((d for report in reports for d in report.decisions),
                       key=lambda d: d.time_ns)
    path_gbps: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    for report in reports:
        for path, gbps in report.path_gbps.items():
            path_gbps[path] = path_gbps.get(path, 0.0) + gbps
        for key, value in report.counters.items():
            counters[key] = counters.get(key, 0.0) + value
    hybrid_stats = None
    if any(report.hybrid_stats for report in reports):
        hybrid_stats = {}
        for report in reports:
            for key, value in (report.hybrid_stats or {}).items():
                hybrid_stats[key] = hybrid_stats.get(key, 0) + value
    return ServeReport(
        adaptive=all(report.adaptive for report in reports),
        elapsed_ns=max(report.elapsed_ns for report in reports),
        tenants=tenants,
        decisions=decisions,
        path_gbps=path_gbps,
        counters=counters,
        engine=reports[0].engine,
        hybrid_stats=hybrid_stats,
    )


def run_sharded(plan: ShardPlan, jobs: Optional[int] = None,
                sync_window_ns: float = 200_000.0,
                **serve_kwargs) -> ServeReport:
    """Execute a shard plan and return the merged report.

    ``jobs`` — worker processes (``None``/0 → one per shard; 1 → the
    in-process reference execution).  ``serve_kwargs`` are forwarded to
    every shard's :class:`~repro.sched.serve.ServeSession` (``engine=
    "hybrid"`` composes with sharding).  ``trace=True`` is rejected:
    tracers do not serialize across process boundaries.
    """
    if sync_window_ns <= 0:
        raise ValueError(f"sync window must be positive: {sync_window_ns}")
    if serve_kwargs.get("trace"):
        raise ValueError("trace=True is not supported for sharded runs")
    for key in ("faults", "fault_seed"):
        if key in serve_kwargs:
            raise ValueError(f"pass {key!r} per shard via ShardSpec")
    shards = plan.shards
    if jobs is None or jobs == 0:
        jobs = len(shards)
    if jobs <= 1 or len(shards) == 1:
        reports, trackers = _run_lockstep_inprocess(
            shards, serve_kwargs, sync_window_ns)
    else:
        reports, trackers = _run_lockstep_multiprocess(
            shards, serve_kwargs, sync_window_ns, jobs)
    return merge_reports(reports, trackers)
