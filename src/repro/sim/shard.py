"""Sharded serving simulation: clusters on worker processes.

A serving run models one server and its clients; a datacenter-scale
experiment is many such machines.  Each machine is a *shard* with its
own event timeline; shards execute on separate worker processes and
merge afterwards.

The execution protocol is conservative time-windowed lockstep: the
parent advances every shard to the same simulated-time barrier
(``sync_window_ns``) before any shard may move past it.  Shards may
exchange traffic through the cross-shard fabric
(:mod:`repro.sim.xshard`): outboxes are collected at every barrier,
routed by a :class:`~repro.sim.xshard.ShardRouter`, and injected into
the destination shard at the start of the next round as URGENT arrivals
at their physical delivery instants.  The **one-window delivery
guarantee** — a message sent in window *W* is delivered in window
*W+1* — holds iff every inter-shard link latency is at least
``sync_window_ns``; :func:`run_sharded` validates exactly that.
``jobs=1`` runs the same lockstep (and the same barrier exchange)
in-process — the bit-identity reference for the multiprocess path,
asserted by ``tests/sim/test_shard.py``.

Cluster-scale chaos layers on top (``docs/robustness.md``):

* a :class:`ShardPlan` may carry ``cluster_faults`` — machine crashes
  and fabric partition/loss/delay/reorder specs
  (:mod:`repro.faults.plan`), interpreted by a
  :class:`~repro.faults.cluster.ClusterInjector` whose every decision
  is a pure hash of the plan seed and message identity, so ``jobs=N``
  stays bit-identical to ``jobs=1`` under any plan and an *empty* plan
  is bit-identical to no plan at all;
* the multiprocess driver is a **supervisor**: worker death and
  barrier stalls are detected (pipe EOF / poll timeout), the failed
  worker is respawned, and the :class:`~repro.sim.supervise.WindowLog`
  — the per-window inbound-message journal, which together with the
  shard spec fully determines worker state — is replayed into it,
  landing bit-identical to the worker that died.  The same log
  serializes to disk for cross-process checkpoint/resume;
* a :class:`~repro.sim.supervise.ConservationWatchdog` audits every
  window of every sharded run: per-tenant arrivals must equal
  completed + rejected + lost + in-flight, and every fabric message
  sent must be handed over, pending, or accounted dropped.

Merging uses :meth:`repro.sched.slo.SloTracker.merge` for the SLO
windows, concatenates decision logs in time order, and sums per-path
bandwidth and telemetry counters (including the ``xshard.*`` fabric
counters).  ``elapsed_ns`` is the maximum over shards and is rounded
up to the sync window (documented divergence from an unsharded run;
per-tenant latencies and counts are exact).
"""

from __future__ import annotations

import copy
import multiprocessing
import traceback
import warnings
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.cluster import ClusterInjector
from repro.faults.plan import FaultPlan
from repro.sched.serve import ServeReport, ServeSession
from repro.sched.slo import SloTracker
from repro.sched.tenant import TenantSpec
from repro.sim.supervise import (ConservationWatchdog, FabricWedgedError,
                                 IncidentLog, ShardWorkerError,
                                 SupervisorConfig, WindowLog,
                                 plan_fingerprint)
from repro.sim.xshard import (CrossTraffic, ShardChannel, ShardRouter,
                              ShardTopology)


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a tenant set (and optional faults) on its own cluster.

    ``exports`` declares which of this shard's tenants send traffic to
    other machines (see :class:`~repro.sim.xshard.CrossTraffic`); the
    plan must then carry (or default) a topology whose link latencies
    admit the chosen sync window.
    """

    name: str
    tenants: Tuple[TenantSpec, ...]
    faults: Optional[FaultPlan] = None
    fault_seed: int = 0
    exports: Tuple[CrossTraffic, ...] = ()
    #: Which NIC this machine carries: ``"snic"`` (off-path SmartNIC,
    #: SoC present, all three comm paths) or ``"rnic"`` (plain RNIC —
    #: host-only, no SoC endpoints, no path-③ bulk offload).
    nic: str = "snic"

    def __post_init__(self):
        if not self.tenants:
            raise ValueError(f"shard {self.name!r} has no tenants")
        if self.nic not in ("snic", "rnic"):
            raise ValueError(f"shard {self.name!r}: unknown nic "
                             f"{self.nic!r}; expected 'snic' or 'rnic'")
        names = {t.name for t in self.tenants}
        seen = set()
        for export in self.exports:
            if export.tenant not in names:
                raise ValueError(
                    f"shard {self.name!r} exports unknown tenant "
                    f"{export.tenant!r}")
            if export.tenant in seen:
                raise ValueError(
                    f"shard {self.name!r} exports tenant "
                    f"{export.tenant!r} twice")
            seen.add(export.tenant)
            if export.dst_shard == self.name:
                raise ValueError(
                    f"shard {self.name!r} exports {export.tenant!r} "
                    "to itself")

    def export_map(self) -> Dict[str, CrossTraffic]:
        return {export.tenant: export for export in self.exports}


@dataclass(frozen=True)
class ShardPlan:
    """An ordered set of shards with globally unique tenant names.

    ``topology`` gives the inter-shard link latencies; when omitted and
    any shard exports traffic (or a cluster fault plan is present),
    :func:`run_sharded` defaults to a uniform
    :class:`~repro.sim.xshard.ShardTopology`.

    ``cluster_faults`` is the rack-scale chaos plan: machine crashes
    and fabric faults, all cluster-scope
    (:func:`repro.faults.plan.is_cluster_fault`).  An empty plan is
    bit-identical to no plan.
    """

    shards: Tuple[ShardSpec, ...]
    topology: Optional[ShardTopology] = None
    cluster_faults: Optional[FaultPlan] = None

    def __post_init__(self):
        if not self.shards:
            raise ValueError("plan needs at least one shard")
        shard_names = [shard.name for shard in self.shards]
        if len(set(shard_names)) != len(shard_names):
            raise ValueError(
                f"duplicate shard names: {shard_names} — tenants must "
                "not overlap machines")
        seen: Dict[str, str] = {}
        for shard in self.shards:
            for spec in shard.tenants:
                if spec.name in seen:
                    raise ValueError(
                        f"tenant {spec.name!r} appears in shards "
                        f"{seen[spec.name]!r} and {shard.name!r}")
                seen[spec.name] = shard.name
        for shard in self.shards:
            for export in shard.exports:
                if export.dst_shard not in shard_names:
                    raise ValueError(
                        f"shard {shard.name!r} exports "
                        f"{export.tenant!r} to unknown shard "
                        f"{export.dst_shard!r}")
        if self.topology is not None:
            missing = set(shard_names) - set(self.topology.shards)
            if missing:
                raise ValueError(
                    f"topology is missing shard(s) {sorted(missing)}")
        if self.cluster_faults is not None:
            # Validates fault scope and shard names; the instance used
            # at run time is built by run_sharded with the topology.
            ClusterInjector(self.cluster_faults, shard_names)

    @property
    def cross_traffic(self) -> bool:
        return any(shard.exports for shard in self.shards)

    @property
    def chaotic(self) -> bool:
        """Whether a non-empty cluster fault plan is armed."""
        return self.cluster_faults is not None and not self.cluster_faults.empty

    def resolved_topology(self) -> Optional[ShardTopology]:
        """The topology to run under (uniform default when exporting
        or when cluster faults need the fabric oracle everywhere)."""
        if self.topology is not None:
            return self.topology
        if self.cross_traffic or self.chaotic:
            return ShardTopology.uniform([s.name for s in self.shards])
        return None

    def with_cluster_faults(self, faults: FaultPlan) -> "ShardPlan":
        return replace(self, cluster_faults=faults)

    @classmethod
    def partition(cls, tenants: Sequence[TenantSpec],
                  n_shards: int) -> "ShardPlan":
        """Round-robin the tenants over ``n_shards`` shards."""
        if n_shards < 1:
            raise ValueError(f"need >= 1 shard, got {n_shards}")
        tenants = tuple(tenants)
        n_shards = min(n_shards, len(tenants))
        groups: List[List[TenantSpec]] = [[] for _ in range(n_shards)]
        for i, spec in enumerate(tenants):
            groups[i % n_shards].append(spec)
        return cls(shards=tuple(
            ShardSpec(name=f"shard{i}", tenants=tuple(group))
            for i, group in enumerate(groups)))


def _lowered(shard: ShardSpec, injector: ClusterInjector) -> ShardSpec:
    """Fold the shard's machine crashes into its own local fault plan.

    Inside the shard a machine death is an SoC crash (QPs error, the
    path policy fails host-ward) with the same recovery schedule; the
    host side is enforced by the runtime's dispatch-time liveness
    check and the fabric-level drops.
    """
    extra = injector.local_faults(shard.name)
    if not extra:
        return shard
    base = shard.faults if shard.faults is not None else FaultPlan()
    return replace(shard, faults=base.with_faults(*extra))


def _make_session(shard: ShardSpec, serve_kwargs: dict,
                  topology: Optional[ShardTopology],
                  injector: Optional[ClusterInjector] = None,
                  fault_timeout_ns: Optional[float] = None) -> ServeSession:
    if serve_kwargs.get("testbed") is not None:
        # SimCluster adopts the testbed's device objects and re-binds
        # them to its own simulator; in-process shards sharing one
        # Testbed would therefore fight over the same SmartNIC and the
        # run would never drain.  Every session gets its own copy
        # (worker processes get one implicitly, via pickling).
        serve_kwargs = dict(serve_kwargs)
        serve_kwargs["testbed"] = copy.deepcopy(serve_kwargs["testbed"])
    channel = None
    if topology is not None:
        channel = ShardChannel(shard.name, topology, shard.export_map(),
                               injector=injector,
                               fault_timeout_ns=fault_timeout_ns)
    return ServeSession(shard.tenants, faults=shard.faults,
                        fault_seed=shard.fault_seed, channel=channel,
                        nic=shard.nic, **serve_kwargs)


def _shard_worker(conn, shard: ShardSpec, serve_kwargs: dict,
                  topology: Optional[ShardTopology],
                  injector: Optional[ClusterInjector] = None,
                  fault_timeout_ns: Optional[float] = None) -> None:
    """Child-process loop: advance on command, report when asked.

    Each ``advance`` carries the barrier and this shard's routed
    inbound messages; the reply carries the session's drained state,
    the channel's idleness, the window's outbox, and the heartbeat
    digest for the conservation watchdog.  A worker-side exception is
    shipped to the parent with the shard name and the full traceback,
    so a crashed shard is attributable without re-running.
    """
    try:
        session = _make_session(shard, serve_kwargs, topology,
                                injector, fault_timeout_ns)
        channel = session.channel
        while True:
            message = conn.recv()
            if message[0] == "advance":
                _cmd, barrier, inbound = message
                if channel is not None and inbound:
                    channel.deliver(inbound)
                done = session.advance(barrier)
                outbox = channel.collect() if channel is not None else []
                idle = channel.idle if channel is not None else True
                conn.send(("ok", done, idle, outbox, session.heartbeat()))
            elif message[0] == "report":
                conn.send(("report", session.finalize(), session.tracker))
                return
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown command {message[0]!r}")
    except Exception:  # pragma: no cover - surfaced in parent
        try:
            conn.send(("error", shard.name, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _reap_worker(proc, shard_name: str, join_timeout_s: float = 5.0,
                 kill_grace_s: float = 2.0) -> None:
    """Put one worker process down for good: join, then terminate,
    then kill, each on its own timeout, warning with the shard's name
    if even SIGKILL could not reap it."""
    proc.join(timeout=join_timeout_s)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=kill_grace_s)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=kill_grace_s)
    if proc.is_alive():  # pragma: no cover - kernel refused SIGKILL
        warnings.warn(
            f"shard worker {shard_name!r} survived terminate and kill "
            f"(pid {proc.pid}); abandoning it")


def _wedged(done: Sequence[bool], idle: Sequence[bool],
            router: ShardRouter, moved: bool) -> bool:
    """A round where nothing can ever make progress again.

    Every shard is drained, no messages moved or are pending, yet some
    channel still awaits an ack — the event that would deliver it can
    no longer be generated anywhere.
    """
    return (all(done) and not moved and not router.in_flight
            and not all(idle))


class _WorkerGone(Exception):
    """A worker died or stalled — respawnable, unlike a worker error."""


def _controller_step(controller, router, injector, barrier: float,
                     window_no: int, heartbeats: Dict[str, dict],
                     done_map: Dict[str, bool]) -> None:
    """One cluster-controller tick at a closed barrier.

    The controller observes the window's heartbeats and may inject
    ``ctl`` directives onto the fabric; they ride the normal router →
    inbox path, so they are window-logged like any other message and a
    replayed shard re-receives them verbatim (the controller's own
    re-injections during replay are discarded with the regenerated
    outboxes).  Runs *before* the watchdog so the flow balance sees the
    injection and the router pending count move together.
    """
    if controller is None:
        return
    messages = controller.observe(window_no, barrier, heartbeats, done_map)
    if not messages:
        return
    if injector is not None:
        messages = injector.apply_outbox(messages)
    if messages:
        router.route(messages)


def _run_lockstep_inprocess(shards: Sequence[ShardSpec],
                            serve_kwargs: dict, sync_window_ns: float,
                            topology: Optional[ShardTopology],
                            injector: Optional[ClusterInjector],
                            fault_timeout_ns: Optional[float],
                            config: Optional[SupervisorConfig],
                            log: WindowLog, incidents: IncidentLog,
                            resumed: bool, controller=None):
    cfg = config if config is not None else SupervisorConfig()
    names = [shard.name for shard in shards]
    by_name = {shard.name: shard for shard in shards}
    sessions = {name: _make_session(by_name[name], serve_kwargs, topology,
                                    injector, fault_timeout_ns)
                for name in names}
    router = ShardRouter(topology) if topology is not None else None
    watchdog = ConservationWatchdog()
    heartbeats: Dict[str, dict] = {}

    def replay_one(name: str,
                   windows: Sequence[Tuple[float, dict]]) -> ServeSession:
        # A ServeSession is a pure function of its spec, so a fresh one
        # re-living the logged windows is bit-identical to the one that
        # was killed.  Outboxes are discarded: the router already saw
        # them.
        session = _make_session(by_name[name], serve_kwargs, topology,
                                injector, fault_timeout_ns)
        for barrier_k, inbound_k in windows:
            if session.channel is not None and inbound_k.get(name):
                session.channel.deliver(inbound_k[name])
            session.advance(barrier_k)
            if session.channel is not None:
                session.channel.collect()
        return session

    def route_window(barrier_now: float) -> bool:
        """Collect + route every channel's outbox; True if any moved."""
        moved_here = False
        for name in names:
            channel = sessions[name].channel
            if channel is None:
                continue
            outbox = channel.collect()
            moved_here = moved_here or bool(outbox)
            if injector is not None:
                outbox = injector.apply_outbox(outbox)
            if outbox:
                router.route(outbox)
        return moved_here

    def audit(barrier_now: float, window_now: int) -> None:
        for name in names:
            heartbeats[name] = sessions[name].heartbeat()
        _controller_step(controller, router, injector, barrier_now,
                         window_now, heartbeats,
                         {name: sessions[name].done for name in names})
        watchdog.check(
            barrier_now, heartbeats,
            router.pending_count if router is not None else 0,
            injector.dropped if injector is not None else 0,
            injected=controller.ctl_sent if controller is not None else 0)

    barrier = 0.0
    window_no = 0
    if resumed:
        # Re-live the checkpointed prefix: logged inboxes are delivered
        # verbatim; routing each window's surviving outboxes (and
        # taking-and-discarding the regenerated inboxes) rebuilds the
        # router contents and the injector counters exactly.
        last = len(log.windows) - 1
        for k, (barrier_k, inbound_k) in enumerate(log.windows):
            window_no += 1
            barrier = barrier_k
            for name in names:
                session = sessions[name]
                if session.channel is not None and inbound_k.get(name):
                    session.channel.deliver(inbound_k[name])
                session.advance(barrier_k)
            route_window(barrier_k)
            audit(barrier_k, window_no)
            if k < last and router is not None:
                next_barrier = log.windows[k + 1][0]
                for name in names:
                    inbox = router.take(name)
                    if injector is not None:
                        injector.shuffle_inbox(name, next_barrier, inbox)

    while True:
        done_flags = [sessions[name].done for name in names]
        idle_flags = [sessions[name].channel.idle
                      if sessions[name].channel is not None else True
                      for name in names]
        if all(done_flags) and all(idle_flags) and (
                router is None or not router.in_flight):
            break
        window_no += 1
        barrier += sync_window_ns
        inbound: Dict[str, list] = {}
        moved = False
        for name in names:
            inbox = router.take(name) if router is not None else []
            if injector is not None:
                inbox = injector.shuffle_inbox(name, barrier, inbox)
            inbound[name] = inbox
            moved = moved or bool(inbox)
        log.record(barrier, inbound)
        if cfg.checkpoint_dir and window_no % cfg.checkpoint_every == 0:
            log.save(cfg.checkpoint_dir)
        if cfg.kill_shard is not None and window_no == cfg.kill_window:
            # Chaos hook, in-process flavor: throw the victim's session
            # away and rebuild it from the window log — exactly the
            # replay the multiprocess supervisor performs on a worker
            # death, minus the process machinery.
            incidents.record("kill-injected", cfg.kill_shard, window_no,
                             "chaos hook: session discarded")
            incidents.record("respawn", cfg.kill_shard, window_no,
                             "rebuilt from the window log")
            sessions[cfg.kill_shard] = replay_one(cfg.kill_shard,
                                                  log.windows[:-1])
        for name in names:
            session = sessions[name]
            if session.channel is not None and inbound[name]:
                session.channel.deliver(inbound[name])
            session.advance(barrier)
        moved = route_window(barrier) or moved
        audit(barrier, window_no)
        if router is not None and _wedged(
                [sessions[name].done for name in names],
                [sessions[name].channel.idle for name in names],
                router, moved):
            raise FabricWedgedError(
                done={name: sessions[name].done for name in names},
                idle={name: sessions[name].channel.idle for name in names},
                pending=router.pending_by_shard())
    watchdog.assert_drained(barrier, heartbeats)
    return ([sessions[name].finalize() for name in names],
            [sessions[name].tracker for name in names])


def _run_lockstep_multiprocess(shards: Sequence[ShardSpec],
                               serve_kwargs: dict, sync_window_ns: float,
                               jobs: int,
                               topology: Optional[ShardTopology],
                               injector: Optional[ClusterInjector],
                               fault_timeout_ns: Optional[float],
                               config: Optional[SupervisorConfig],
                               log: WindowLog, incidents: IncidentLog,
                               resumed: bool, controller=None):
    cfg = config if config is not None else SupervisorConfig()
    ctx = multiprocessing.get_context()
    router = ShardRouter(topology) if topology is not None else None
    watchdog = ConservationWatchdog()
    names = [shard.name for shard in shards]
    n = len(shards)
    procs: List = [None] * n
    conns: List = [None] * n
    heartbeats: Dict[str, dict] = {}

    def spawn(i: int) -> None:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_shard_worker,
                           args=(child_conn, shards[i], serve_kwargs,
                                 topology, injector, fault_timeout_ns),
                           daemon=True)
        proc.start()
        child_conn.close()
        procs[i], conns[i] = proc, parent_conn

    def send(i: int, message: tuple) -> None:
        try:
            conns[i].send(message)
        except (BrokenPipeError, OSError):
            pass                   # death surfaces on the recv side

    def recv(i: int) -> tuple:
        proc, conn = procs[i], conns[i]
        try:
            if not conn.poll(cfg.exchange_timeout_s):
                state = ("alive but stalled" if proc.is_alive()
                         else "dead")
                raise _WorkerGone(
                    f"no barrier reply within {cfg.exchange_timeout_s:g}s "
                    f"(process {state})")
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise _WorkerGone(f"pipe to worker closed: {exc!r}")
        if reply[0] == "error":
            # A worker-side exception is deterministic: a respawn would
            # replay straight into it.  Surface it with its traceback.
            raise ShardWorkerError(reply[1], reply[2])
        return reply

    def respawn(i: int, prefix: Sequence[Tuple[float, dict]],
                failure: _WorkerGone, window_no: int) -> None:
        name = names[i]
        incidents.record("respawn", name, window_no, str(failure))
        if incidents.respawns > cfg.max_respawns:
            raise ShardWorkerError(
                name, f"respawn budget ({cfg.max_respawns}) exhausted; "
                      f"last failure: {failure}")
        try:
            conns[i].close()
        except OSError:
            pass
        if procs[i].is_alive():
            procs[i].terminate()
        _reap_worker(procs[i], name, cfg.join_timeout_s, cfg.kill_grace_s)
        spawn(i)
        # Deterministic replay: the fresh worker re-lives every logged
        # window; its state after the last equals the lost worker's at
        # its final barrier.  Outboxes are discarded — the router
        # already routed (or delivered) them.
        for barrier_k, inbound_k in prefix:
            send(i, ("advance", barrier_k, inbound_k.get(name, [])))
            recv(i)

    def exchange(i: int, barrier: float, window_no: int,
                 prefix: Sequence[Tuple[float, dict]],
                 current: Dict[str, list]) -> tuple:
        """Await window ``window_no``'s reply, supervising the worker:
        death or stall → respawn, replay ``prefix``, re-advance with
        ``current``, and await again."""
        while True:
            try:
                return recv(i)
            except _WorkerGone as failure:
                respawn(i, prefix, failure, window_no)
                send(i, ("advance", barrier, current.get(names[i], [])))

    try:
        for i in range(n):
            spawn(i)
        done = [False] * n
        idle = [True] * n
        barrier = 0.0
        window_no = 0
        if resumed:
            # Catch every worker up to the checkpoint; routing each
            # window's surviving outboxes (and discarding the
            # regenerated inboxes — the log holds them verbatim)
            # rebuilds the router and injector counters exactly.
            last = len(log.windows) - 1
            for k, (barrier_k, inbound_k) in enumerate(log.windows):
                window_no += 1
                barrier = barrier_k
                for i in range(n):
                    send(i, ("advance", barrier_k,
                             inbound_k.get(names[i], [])))
                for i in range(n):
                    reply = exchange(i, barrier_k, window_no,
                                     log.windows[:k], inbound_k)
                    _tag, done[i], idle[i], outbox, beat = reply
                    heartbeats[names[i]] = beat
                    if injector is not None:
                        outbox = injector.apply_outbox(outbox)
                    if router is not None and outbox:
                        router.route(outbox)
                _controller_step(controller, router, injector, barrier_k,
                                 window_no, heartbeats,
                                 dict(zip(names, done)))
                watchdog.check(
                    barrier_k, heartbeats,
                    router.pending_count if router is not None else 0,
                    injector.dropped if injector is not None else 0,
                    injected=(controller.ctl_sent
                              if controller is not None else 0))
                if k < last and router is not None:
                    next_barrier = log.windows[k + 1][0]
                    for name in names:
                        inbox = router.take(name)
                        if injector is not None:
                            injector.shuffle_inbox(name, next_barrier, inbox)

        while True:
            if all(done) and all(idle) and (router is None
                                            or not router.in_flight):
                break
            window_no += 1
            barrier += sync_window_ns
            inbound: Dict[str, list] = {}
            moved = False
            for i, name in enumerate(names):
                inbox = router.take(name) if router is not None else []
                if injector is not None:
                    inbox = injector.shuffle_inbox(name, barrier, inbox)
                inbound[name] = inbox
                moved = moved or bool(inbox)
            log.record(barrier, inbound)
            if cfg.checkpoint_dir and window_no % cfg.checkpoint_every == 0:
                log.save(cfg.checkpoint_dir)
            # One barrier round: every live shard gets the new horizon
            # (and its inbound messages) before any reply is awaited,
            # so shards advance in parallel.
            live = []
            for i, name in enumerate(names):
                if router is None and done[i]:
                    continue        # independent shard fully drained
                send(i, ("advance", barrier, inbound[name]))
                live.append(i)
            if cfg.kill_shard is not None and window_no == cfg.kill_window:
                victim = names.index(cfg.kill_shard)
                if procs[victim].is_alive():
                    incidents.record("kill-injected", cfg.kill_shard,
                                     window_no, "chaos hook: SIGKILL")
                    procs[victim].kill()
            for i in live:
                reply = exchange(i, barrier, window_no,
                                 log.windows[:-1], inbound)
                _tag, done[i], idle[i], outbox, beat = reply
                heartbeats[names[i]] = beat
                if outbox:
                    moved = True
                    if injector is not None:
                        outbox = injector.apply_outbox(outbox)
                    if router is not None and outbox:
                        router.route(outbox)
            _controller_step(controller, router, injector, barrier,
                             window_no, heartbeats, dict(zip(names, done)))
            watchdog.check(
                barrier, heartbeats,
                router.pending_count if router is not None else 0,
                injector.dropped if injector is not None else 0,
                injected=(controller.ctl_sent
                          if controller is not None else 0))
            if router is not None and _wedged(done, idle, router, moved):
                raise FabricWedgedError(
                    done=dict(zip(names, done)),
                    idle=dict(zip(names, idle)),
                    pending=router.pending_by_shard())
        watchdog.assert_drained(barrier, heartbeats)
        reports: List = [None] * n
        trackers: List = [None] * n
        for i in range(n):
            send(i, ("report",))
            while True:
                try:
                    reply = recv(i)
                    break
                except _WorkerGone as failure:
                    respawn(i, log.windows, failure, window_no)
                    send(i, ("report",))
            _tag, reports[i], trackers[i] = reply
        return reports, trackers
    finally:
        for i in range(n):
            if procs[i] is None:
                continue
            try:
                conns[i].close()
            except OSError:
                pass
            _reap_worker(procs[i], names[i],
                         cfg.join_timeout_s, cfg.kill_grace_s)


def merge_reports(reports: Sequence[ServeReport],
                  trackers: Sequence[SloTracker]) -> ServeReport:
    """Fold per-shard reports (and trackers) into one cluster view."""
    if not reports:
        raise ValueError("nothing to merge")
    merged_tracker = trackers[0]
    for tracker in trackers[1:]:
        merged_tracker.merge(tracker)
    tenants: Dict[str, object] = {}
    for report in reports:
        overlap = tenants.keys() & report.tenants.keys()
        if overlap:
            raise ValueError(f"tenant(s) {sorted(overlap)} in two shards")
        tenants.update(report.tenants)
    # The merged tracker is the ground truth for totals; per-shard
    # reports must agree with it exactly.
    for name, tenant in tenants.items():
        if merged_tracker.completed[name] != tenant.completed:
            raise AssertionError(
                f"merge drift for {name!r}: tracker says "
                f"{merged_tracker.completed[name]}, report {tenant.completed}")
    decisions = sorted((d for report in reports for d in report.decisions),
                       key=lambda d: d.time_ns)
    path_gbps: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    for report in reports:
        for path, gbps in report.path_gbps.items():
            path_gbps[path] = path_gbps.get(path, 0.0) + gbps
        for key, value in report.counters.items():
            counters[key] = counters.get(key, 0.0) + value
    hybrid_stats = None
    if any(report.hybrid_stats for report in reports):
        hybrid_stats = {}
        for report in reports:
            for key, value in (report.hybrid_stats or {}).items():
                hybrid_stats[key] = hybrid_stats.get(key, 0) + value
    # Tenants are disjoint across shards, so the per-tenant window
    # archives and conservation terms merge by plain union.
    windows: Dict[str, tuple] = {}
    conservation: Dict[str, tuple] = {}
    for report in reports:
        windows.update(report.windows)
        conservation.update(report.conservation)
    return ServeReport(
        adaptive=all(report.adaptive for report in reports),
        elapsed_ns=max(report.elapsed_ns for report in reports),
        tenants=tenants,
        decisions=decisions,
        path_gbps=path_gbps,
        counters=counters,
        engine=reports[0].engine,
        hybrid_stats=hybrid_stats,
        windows=windows,
        conservation=conservation,
    )


def run_sharded(plan: ShardPlan, jobs: Optional[int] = None,
                sync_window_ns: Optional[float] = None,
                supervisor: Optional[SupervisorConfig] = None,
                controller=None, **serve_kwargs) -> ServeReport:
    """Execute a shard plan and return the merged report.

    ``jobs`` — worker processes (``None``/0 → one per shard; 1 → the
    in-process reference execution).  ``sync_window_ns`` defaults to
    200 µs for independent shards, and to the topology's tightest
    *machine-to-machine* link latency when the plan carries cross-shard
    traffic — LB links are excluded because the LB only originates
    barrier-clocked control messages, never mid-window traffic
    (:meth:`~repro.sim.xshard.ShardTopology.min_fabric_latency_ns`);
    an explicit window wider than that latency is rejected — it would
    silently break the one-window delivery guarantee.

    ``controller`` is an optional cluster scheduler
    (:class:`repro.cluster.ClusterScheduler`): at every closed barrier
    it sees all shard heartbeats and may inject ``ctl`` directives onto
    the fabric.  Its decisions are a pure function of the heartbeat
    sequence, so ``jobs=N`` stays bit-identical to ``jobs=1`` with a
    live controller.  ``serve_kwargs`` are forwarded to every shard's
    :class:`~repro.sched.serve.ServeSession` (``engine="hybrid"``
    composes with sharding; exporting tenants stay at event level).
    ``trace=True`` is rejected: tracers do not serialize across
    process boundaries.

    ``supervisor`` configures worker supervision, checkpointing, chaos
    kills and incident reporting
    (:class:`~repro.sim.supervise.SupervisorConfig`); multiprocess runs
    are supervised with the defaults even when it is omitted.  The
    plan's ``cluster_faults`` arm the
    :class:`~repro.faults.cluster.ClusterInjector`; its ``cluster.*``
    counters join the merged report, and the conservation watchdog
    audits every window either way.
    """
    topology = plan.resolved_topology()
    injector = None
    if plan.chaotic:
        injector = ClusterInjector(plan.cluster_faults,
                                   [s.name for s in plan.shards], topology)
    if controller is not None and topology is None:
        raise ValueError(
            "a cluster controller needs a fabric: give the plan a "
            "topology (or exports/cluster faults that default one)")
    if sync_window_ns is None:
        sync_window_ns = (topology.min_fabric_latency_ns()
                          if topology is not None else 200_000.0)
    if sync_window_ns <= 0:
        raise ValueError(f"sync window must be positive: {sync_window_ns}")
    if (topology is not None
            and sync_window_ns > topology.min_fabric_latency_ns()):
        raise ValueError(
            f"sync_window_ns={sync_window_ns} exceeds the shortest "
            f"machine-to-machine link latency "
            f"({topology.min_fabric_latency_ns()} ns): the one-window "
            "delivery guarantee would not hold")
    if serve_kwargs.get("trace"):
        raise ValueError("trace=True is not supported for sharded runs")
    for key in ("faults", "fault_seed", "channel", "nic"):
        if key in serve_kwargs:
            raise ValueError(f"pass {key!r} per shard via ShardSpec")
    shards = plan.shards
    fault_timeout_ns = None
    if injector is not None:
        shards = tuple(_lowered(shard, injector) for shard in shards)
        fault_timeout_ns = injector.fault_timeout_ns()
    if (supervisor is not None and supervisor.kill_shard is not None
            and supervisor.kill_shard not in {s.name for s in shards}):
        raise ValueError(
            f"kill_shard {supervisor.kill_shard!r} is not in the plan; "
            f"shards: {[s.name for s in shards]}")
    incidents = IncidentLog()
    # The controller's policy joins the run identity: resuming a
    # checkpoint under a different scheduler config must be refused.
    fp_kwargs = dict(serve_kwargs)
    if controller is not None:
        fp_kwargs["__controller__"] = controller.fingerprint()
    fingerprint = plan_fingerprint(plan, sync_window_ns, fp_kwargs)
    resumed = False
    if supervisor is not None and supervisor.resume:
        log = WindowLog.load(supervisor.checkpoint_dir,
                             expect_fingerprint=fingerprint)
        resumed = len(log) > 0
    else:
        log = WindowLog(fingerprint, sync_window_ns)
    if jobs is None or jobs == 0:
        jobs = len(shards)
    if jobs <= 1 or len(shards) == 1:
        reports, trackers = _run_lockstep_inprocess(
            shards, serve_kwargs, sync_window_ns, topology, injector,
            fault_timeout_ns, supervisor, log, incidents, resumed,
            controller=controller)
    else:
        reports, trackers = _run_lockstep_multiprocess(
            shards, serve_kwargs, sync_window_ns, jobs, topology, injector,
            fault_timeout_ns, supervisor, log, incidents, resumed,
            controller=controller)
    if supervisor is not None and supervisor.checkpoint_dir:
        log.complete = True
        log.save(supervisor.checkpoint_dir)
    if supervisor is not None and supervisor.incident_report:
        incidents.save(supervisor.incident_report)
    report = merge_reports(reports, trackers)
    if injector is not None:
        report.counters.update(injector.counters())
    if controller is not None:
        report.counters.update(controller.counters())
    if incidents.incidents:
        report.counters["supervisor.incidents"] = len(incidents.incidents)
        report.counters["supervisor.respawns"] = incidents.respawns
    return report
