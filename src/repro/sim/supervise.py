"""Supervision for sharded runs: typed failures, checkpoints, watchdog.

Three concerns live here, all serving one contract — a sharded run
either completes with exactly the counts an unfailed run would have
produced, or dies with a diagnosis naming the shard and the invariant:

* **typed failures** — :class:`FabricWedgedError` (the lockstep loop
  stopped making progress, with per-shard done/idle flags and pending
  message counts), :class:`ShardWorkerError` (a worker process died or
  raised, with the shard name and the worker-side traceback), and
  :class:`ConservationError` (a per-window accounting invariant broke);
* **window checkpoints** — :class:`WindowLog`, the supervisor's
  event-sourced snapshot.  Shard state is fully determined by the shard
  spec plus the sequence of inbound fabric messages per window, so the
  checkpoint records exactly that; recovery replays it against a fresh
  worker and lands bit-identical (:func:`repro.sim.shard.run_sharded`
  owns the replay).  :meth:`save`/:meth:`load` round-trip through JSON
  for cross-process resume (``repro serve --checkpoint-dir/--resume``);
* **the conservation watchdog** — :class:`ConservationWatchdog` checks,
  at every barrier, that every tenant's arrivals equal completed +
  rejected + lost + in-flight, that counters only grow, and that every
  fabric message sent is accounted for as handed over, still pending in
  the router, or dropped by the cluster injector.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.xshard import ShardMessage

CHECKPOINT_FILE = "checkpoint.json"


# -- typed failures ---------------------------------------------------------------


class FabricWedgedError(RuntimeError):
    """The lockstep loop advanced a window in which no shard moved, yet
    the run is not finished — a deadlock in the cross-shard fabric."""

    def __init__(self, done: Dict[str, bool], idle: Dict[str, bool],
                 pending: Dict[str, int]):
        self.done = dict(done)
        self.idle = dict(idle)
        self.pending = dict(pending)
        flags = ", ".join(
            f"{shard}: done={done[shard]} idle={idle[shard]} "
            f"pending={pending.get(shard, 0)}"
            for shard in sorted(done))
        super().__init__(
            f"cross-shard fabric wedged: no shard progressed and "
            f"messages remain undeliverable ({flags})")


class ShardWorkerError(RuntimeError):
    """A shard worker failed in a way a respawn cannot (or may not)
    fix: it raised, or it died more times than the respawn budget."""

    def __init__(self, shard: str, detail: str):
        self.shard = shard
        self.detail = detail
        super().__init__(f"shard worker {shard!r} failed:\n{detail}")


class ConservationError(RuntimeError):
    """A per-window accounting invariant broke — request or message
    flow is not conserved, which means simulation state is corrupt."""

    def __init__(self, barrier: float, violations: Sequence[str]):
        self.barrier = barrier
        self.violations = tuple(violations)
        lines = "\n  ".join(self.violations)
        super().__init__(
            f"conservation violated at barrier {barrier:.0f} ns:\n  {lines}")


# -- configuration ----------------------------------------------------------------


@dataclass(frozen=True)
class SupervisorConfig:
    """How :func:`repro.sim.shard.run_sharded` supervises its workers.

    * ``exchange_timeout_s`` — wall-clock budget for one worker to
      answer one barrier exchange before it is declared stalled;
    * ``join_timeout_s``/``kill_grace_s`` — the terminate→kill
      escalation schedule when reaping workers;
    * ``max_respawns`` — total worker respawns allowed per run before
      the supervisor gives up with :class:`ShardWorkerError`;
    * ``checkpoint_dir``/``checkpoint_every``/``resume`` — persist the
      :class:`WindowLog` every N windows and optionally start from it;
    * ``kill_shard``/``kill_window`` — chaos hook: hard-kill the named
      shard's worker at the given 1-based window, forcing a respawn
      (the run must still produce unkilled counts);
    * ``incident_report`` — where to write the supervisor's incident
      log as JSON.
    """

    exchange_timeout_s: float = 60.0
    join_timeout_s: float = 5.0
    kill_grace_s: float = 2.0
    max_respawns: int = 3
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1
    resume: bool = False
    kill_shard: Optional[str] = None
    kill_window: int = 0
    incident_report: Optional[str] = None

    def __post_init__(self):
        if self.exchange_timeout_s <= 0:
            raise ValueError(
                f"exchange timeout must be positive: {self.exchange_timeout_s}")
        if self.join_timeout_s <= 0 or self.kill_grace_s <= 0:
            raise ValueError("reap timeouts must be positive")
        if self.max_respawns < 0:
            raise ValueError(f"negative respawn budget: {self.max_respawns}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1: {self.checkpoint_every}")
        if self.resume and not self.checkpoint_dir:
            raise ValueError("resume requires a checkpoint_dir")
        if self.kill_shard is not None and self.kill_window < 1:
            raise ValueError("kill_window is 1-based; set it >= 1")


# -- the event-sourced checkpoint -------------------------------------------------


def _stable(value) -> str:
    """A resume-stable description of one serve kwarg."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return repr(value)
    if dataclasses.is_dataclass(value):
        return repr(value)
    return type(value).__name__


def plan_fingerprint(plan, sync_window_ns: Optional[float],
                     serve_kwargs: Dict) -> str:
    """Identity of a sharded run for checkpoint-compatibility checks.

    Covers everything that determines worker behavior: the shard specs
    (tenants, local fault plans, exports), the topology, the cluster
    fault plan, the sync window, and the serve kwargs.  Two runs with
    the same fingerprint replay identically from the same log.
    """
    cluster = getattr(plan, "cluster_faults", None)
    parts = [
        repr(plan.shards),
        repr(plan.topology),
        repr(cluster.to_dict()) if cluster is not None else "None",
        repr(sync_window_ns),
        ",".join(f"{key}={_stable(serve_kwargs[key])}"
                 for key in sorted(serve_kwargs)),
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


class WindowLog:
    """The inbound-message journal that *is* the shard checkpoint.

    A shard worker's state after window k is a pure function of its
    spec and the inbound messages it was handed at each of windows
    1..k, so recording those (plus the barrier times) is a complete,
    tiny snapshot: respawn a fresh worker, replay the log, and it is
    bit-identical to the one that died.  The router's pending messages
    need no separate serialization — they are exactly the outboxes of
    the last recorded window, which replay regenerates.
    """

    def __init__(self, fingerprint: str, sync_window_ns: float):
        self.fingerprint = fingerprint
        self.sync_window_ns = sync_window_ns
        self.windows: List[Tuple[float, Dict[str, List[ShardMessage]]]] = []
        self.complete = False

    def __len__(self) -> int:
        return len(self.windows)

    def record(self, barrier: float,
               inbound: Dict[str, List[ShardMessage]]) -> None:
        self.windows.append(
            (barrier, {shard: list(msgs) for shard, msgs in inbound.items()}))

    # -- JSON round-trip ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "sync_window_ns": self.sync_window_ns,
            "complete": self.complete,
            "windows": [
                {"barrier": barrier,
                 "inbound": {shard: [dataclasses.asdict(m) for m in msgs]
                             for shard, msgs in inbound.items()}}
                for barrier, inbound in self.windows
            ],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "WindowLog":
        log = cls(fingerprint=raw["fingerprint"],
                  sync_window_ns=float(raw["sync_window_ns"]))
        log.complete = bool(raw.get("complete", False))
        for window in raw["windows"]:
            inbound = {
                shard: [ShardMessage(**m) for m in msgs]
                for shard, msgs in window["inbound"].items()}
            log.windows.append((float(window["barrier"]), inbound))
        return log

    def save(self, directory: str) -> str:
        """Atomically persist the log as ``checkpoint.json``."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, CHECKPOINT_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(self.to_dict(), handle)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, directory: str,
             expect_fingerprint: Optional[str] = None) -> "WindowLog":
        path = os.path.join(directory, CHECKPOINT_FILE)
        with open(path) as handle:
            log = cls.from_dict(json.load(handle))
        if (expect_fingerprint is not None
                and log.fingerprint != expect_fingerprint):
            raise ValueError(
                f"checkpoint at {path} was taken from a different run "
                f"(fingerprint {log.fingerprint} != {expect_fingerprint}); "
                f"refusing to resume")
        return log


# -- the conservation watchdog ----------------------------------------------------


class ConservationWatchdog:
    """Per-window flow-conservation checks over a sharded run.

    ``heartbeats`` maps each shard to the picklable digest produced by
    :meth:`repro.sched.serve.ServeSession.heartbeat`: per-tenant
    ``(arrivals, completed, rejected, lost, in_flight)`` plus the
    channel's ``(sent, handed, fired, timeouts)`` flow counts.
    """

    def __init__(self):
        self._prev: Dict[str, dict] = {}
        self.windows_checked = 0

    def check(self, barrier: float, heartbeats: Dict[str, dict],
              router_pending: int, fabric_dropped: int,
              injected: int = 0) -> None:
        """Audit one closed window.

        ``injected`` counts messages the lockstep parent itself put on
        the fabric (cluster-scheduler ctl directives): they were never
        sent by any shard channel, so they appear on the handed side of
        the flow balance without a matching ``sent``.
        """
        violations = []
        total_sent = total_handed = 0
        for shard in sorted(heartbeats):
            beat = heartbeats[shard]
            prev = self._prev.get(shard, {"tenants": {}, "fabric": (0,) * 4})
            for tenant in sorted(beat["tenants"]):
                arrivals, completed, rejected, lost, in_flight = \
                    beat["tenants"][tenant]
                if in_flight < 0:
                    violations.append(
                        f"{shard}/{tenant}: negative in-flight {in_flight}")
                if arrivals != completed + rejected + lost + in_flight:
                    violations.append(
                        f"{shard}/{tenant}: arrivals {arrivals} != "
                        f"completed {completed} + rejected {rejected} + "
                        f"lost {lost} + in-flight {in_flight}")
                before = prev["tenants"].get(tenant)
                if before is not None:
                    for label, was, now in (
                            ("arrivals", before[0], arrivals),
                            ("completed", before[1], completed),
                            ("rejected", before[2], rejected),
                            ("lost", before[3], lost)):
                        if now < was:
                            violations.append(
                                f"{shard}/{tenant}: {label} went backwards "
                                f"({was} -> {now})")
            sent, handed, fired, _timeouts = beat["fabric"]
            if fired > handed:
                violations.append(
                    f"{shard}: fabric fired {fired} > handed {handed}")
            if sent < prev["fabric"][0] or handed < prev["fabric"][1]:
                violations.append(f"{shard}: fabric counters went backwards")
            total_sent += sent
            total_handed += handed
        if total_sent + injected != (total_handed + router_pending
                                     + fabric_dropped):
            violations.append(
                f"fabric flow: sent {total_sent} + injected {injected} "
                f"!= handed {total_handed} "
                f"+ router-pending {router_pending} "
                f"+ dropped {fabric_dropped}")
        if violations:
            raise ConservationError(barrier, violations)
        self._prev = {shard: {"tenants": dict(beat["tenants"]),
                              "fabric": tuple(beat["fabric"])}
                      for shard, beat in heartbeats.items()}
        self.windows_checked += 1

    def assert_drained(self, barrier: float,
                       heartbeats: Dict[str, dict]) -> None:
        """Termination check: nothing may still be in flight."""
        violations = [
            f"{shard}/{tenant}: {in_flight} requests still in flight "
            f"at termination"
            for shard, beat in sorted(heartbeats.items())
            for tenant, (_, _, _, _, in_flight)
            in sorted(beat["tenants"].items())
            if in_flight != 0]
        if violations:
            raise ConservationError(barrier, violations)


# -- incident log -----------------------------------------------------------------


@dataclass
class IncidentLog:
    """What the supervisor saw go wrong, for the incident report."""

    incidents: List[dict] = field(default_factory=list)
    respawns: int = 0

    def record(self, kind: str, shard: str, window: int,
               detail: str = "") -> None:
        self.incidents.append({
            "kind": kind,
            "shard": shard,
            "window": window,
            "detail": detail,
            "wall_time": time.time(),
        })
        if kind == "respawn":
            self.respawns += 1

    def report(self) -> dict:
        return {"respawns": self.respawns, "incidents": list(self.incidents)}

    def save(self, path: str) -> str:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.report(), handle, indent=2)
        return path
