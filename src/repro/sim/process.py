"""Coroutine processes: generators that ``yield`` events to wait on them."""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event, URGENT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields :class:`~repro.sim.events.Event` instances.  When
    a yielded event succeeds, the generator is resumed with the event's
    value; when it fails, the exception is thrown into the generator.
    The process event itself succeeds with the generator's return value.
    """

    __slots__ = ("generator", "_waiting_on", "name", "_send", "_throw",
                 "_trace_ctx")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__} "
                "(did you call the function instead of passing its generator?)")
        super().__init__(sim)
        self.generator = generator
        # Bound-method localization: _resume runs once per event in the
        # hot loop, so skip the per-call attribute lookups.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event = None
        # Span-tracing context (repro.trace): the verb trace this
        # process was spawned under, restored on every resume so spans
        # land in the right tree even with many verbs in flight.
        tracer = sim.tracer
        if tracer is not None:
            tracer.on_spawn(self)
        else:
            self._trace_ctx = None
        # Kick off the process at the current simulated instant.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        waited = self._waiting_on
        if waited is not None:
            if waited.callbacks is not None:
                try:
                    waited.callbacks.remove(self._resume)
                except ValueError:
                    pass
            # Withdraw cancellable requests (resource grants, store
            # get/put) so the interrupted wait doesn't leak capacity.
            withdraw = getattr(waited, "_withdraw", None)
            if withdraw is not None:
                withdraw()
        self._waiting_on = None
        poke = Event(self.sim)
        poke.add_callback(self._resume)
        poke.fail(Interrupt(cause), priority=URGENT)

    # -- engine plumbing --------------------------------------------------------

    def _resume(self, event: Event) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.on_resume(self)
        self._waiting_on = None
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                target = self._throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances")
            try:
                self.generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc2:
                self.fail(exc2 if exc2 is not error else error)
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("yielded an event from another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)
