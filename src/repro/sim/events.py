"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot future living inside a single
:class:`~repro.sim.engine.Simulator`.  Processes ``yield`` events to wait
on them; arbitrary callbacks may also be attached.  Events can *succeed*
(carrying a value) or *fail* (carrying an exception which is re-raised in
every waiting process).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.sim.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

# Scheduling priorities: lower sorts earlier at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2

_PENDING = object()


class Event:
    """A one-shot triggerable future bound to a simulator."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._scheduled = False

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True unless the event failed."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0,
                priority: int = NORMAL) -> "Event":
        """Trigger the event successfully, firing after ``delay`` ns."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0,
             priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay, priority)
        return self

    # -- engine hooks ------------------------------------------------------------

    def _fire(self) -> None:
        """Run callbacks.  Called by the engine when the event is popped."""
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback(event)``; runs immediately if already fired."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` ns after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 priority: int = NORMAL):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._schedule(self, delay, priority)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events):
        super().__init__(sim)
        self.events = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("cannot mix events of two simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
        else:
            for event in self.events:
                event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child has fired; value is the list of child values.

    Fails as soon as any child fails.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Fires when the first child fires; value is that child's value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self.succeed(event.value)
