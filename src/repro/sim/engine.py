"""The event loop: a time-ordered queue of events and the simulated clock."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import Event, Timeout, NORMAL
from repro.sim.process import Process


class Simulator:
    """A discrete-event simulator with a nanosecond clock.

    Events are executed in ``(time, priority, insertion order)`` order,
    so simultaneous events are deterministic.
    """

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self._event_count: int = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events fired so far (a cheap progress metric)."""
        return self._event_count

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                priority: int = NORMAL) -> Timeout:
        """An event firing ``delay`` ns from now."""
        return Timeout(self, delay, value, priority)

    def process(self, generator: Generator) -> Process:
        """Start a coroutine process; returns its completion event."""
        return Process(self, generator)

    # -- scheduling -----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    # -- running -----------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Pop and fire exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self._event_count += 1
        event._fire()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` ns is reached, or
        ``max_events`` more events have fired.

        ``until`` is an absolute simulated timestamp.  When the run stops
        because of ``until``, the clock is advanced to exactly ``until``.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        fired = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            if max_events is not None and fired >= max_events:
                return
            self.step()
            fired += 1
        if until is not None:
            self._now = until
