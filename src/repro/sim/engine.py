"""The event loop: a time-ordered queue of events and the simulated clock."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import Event, Timeout, NORMAL
from repro.sim.process import Process

# Priority and insertion order share one integer sort key: the priority
# lives above bit 48, the sequence number below.  One fewer tuple slot
# per queue entry and one fewer comparison per sift — this loop is the
# hottest code in every DES cross-check.
_SEQ_BITS = 48
_SEQ_MASK = (1 << _SEQ_BITS) - 1


class Simulator:
    """A discrete-event simulator with a nanosecond clock.

    Events are executed in ``(time, priority, insertion order)`` order,
    so simultaneous events are deterministic.
    """

    __slots__ = ("_now", "_queue", "_seq", "_event_count", "tracer")

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self._event_count: int = 0
        # Span tracer hook (repro.trace).  None on untraced runs; every
        # instrumentation point guards with one ``is not None`` check,
        # so tracing is pay-as-you-go and adds no simulation events.
        self.tracer = None

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events fired so far (a cheap progress metric)."""
        return self._event_count

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                priority: int = NORMAL) -> Timeout:
        """An event firing ``delay`` ns from now."""
        return Timeout(self, delay, value, priority)

    def process(self, generator: Generator) -> Process:
        """Start a coroutine process; returns its completion event."""
        return Process(self, generator)

    # -- scheduling -----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue,
                       (self._now + delay,
                        (priority << _SEQ_BITS) | (self._seq & _SEQ_MASK),
                        event))

    # -- running -----------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Pop and fire exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _order, event = heapq.heappop(self._queue)
        self._now = when
        self._event_count += 1
        event._fire()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` ns is reached, or
        ``max_events`` more events have fired.

        ``until`` is an absolute simulated timestamp.  The clock is
        fast-forwarded to exactly ``until`` only when the queue is
        exhausted or the horizon is actually reached — a run stopped
        early by the ``max_events`` budget keeps the clock at the last
        fired event, so chunked ``run(until=..., max_events=...)``
        loops observe consistent time.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        if until is None and max_events is None:
            # Hot path: the horizon and budget guards are hoisted out of
            # the loop entirely — a drain-to-empty run (every serving
            # run, every cross-check) pays only pop + fire per event.
            try:
                while queue:
                    when, _order, event = pop(queue)
                    self._now = when
                    fired += 1
                    event._fire()
            finally:
                self._event_count += fired
            return
        try:
            while queue:
                if max_events is not None and fired >= max_events:
                    return
                when = queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    return
                when, _order, event = pop(queue)
                self._now = when
                fired += 1
                event._fire()
        finally:
            self._event_count += fired
        if until is not None:
            self._now = until
