"""Hybrid analytic/DES execution for serving runs.

The serving stack spends almost all of its events inside steady-state
stretches: tenants admitted at fixed intervals, workers draining
queues whose service times repeat the same congestion sawtooth, the
scheduler ticking without deciding anything.  Event-level simulation
re-derives that equilibrium ~50 events per request; the operational
laws predict it in O(1) per request.

:class:`HybridController` exploits this.  It watches a live
:class:`~repro.sched.runtime.ServingRuntime` and flips the whole run
between two modes:

* **GUARD** — plain DES.  Every run starts here, and every transient
  (fault window, scheduler decision, SoC crash) forces the run back
  here for a guard window, so transient behaviour is always simulated
  at event level.  While guarded, the runtime feeds the controller an
  empirical *service-time profile* per ``(tenant, op, lease
  generation)`` — post-to-completion durations net of queue wait and
  token-bucket pacing.

* **ANALYTIC** — fast-forward.  Once the run has been steady for
  ``stable_ticks`` control ticks (enough window samples per tenant, no
  new losses, no fault window within lookahead), the controller drains
  each tenant's admission queue into a deterministic recurrence and
  takes over the arrival processes via a handover protocol
  (:meth:`ServingRuntime._arrivals` cooperates).  Per synthesized
  arrival it replays the admission check, the shared token bucket and
  a cyclic replay of the recorded service profile — advancing
  completion counts, the :class:`~repro.sched.slo.SloTracker` windows
  and the clock without scheduling events.  Only the control ticks
  remain at event level (~6 events per tick instead of thousands).

Faithfulness contract (checked by ``repro.sim.crosscheck`` and the
property tests):

* pure-DES runs are **bit-identical** to a build without this module —
  the runtime's hooks are ``None`` and dormant;
* hybrid runs match pure DES **exactly** on completion / rejection /
  loss counts and on decision logs;
* p50/p99 latency and goodput agree within the declared tolerances of
  :class:`HybridConfig` (the analytic segment replays profiles, so
  individual latencies are re-sampled, not re-derived).

Known, documented divergences: per-component telemetry counters (the
analytic segment posts no verbs), work-request ids, and profile
staleness across a tenant's stream end.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.paths import Opcode
from repro.sched.tenant import CompletionRecord
from repro.sim.events import URGENT
from repro.units import gbps, gib_per_s

#: Mode names (kept as plain strings for cheap comparison and repr).
GUARD = "guard"
ANALYTIC = "analytic"


@dataclass(frozen=True)
class HybridConfig:
    """Tuning knobs and the declared tolerance contract."""

    #: DES guard window re-opened around every transient, in ns.
    guard_ns: float = 40_000.0
    #: Consecutive steady control ticks required before fast-forwarding.
    stable_ticks: int = 2
    #: Minimum rolling-window completions per tenant (and minimum
    #: service-profile samples per op) before its behaviour counts as
    #: characterized.
    min_samples: int = 4
    #: How far ahead of a tick a fault window must be to stay analytic.
    lookahead_ns: float = 20_000.0
    #: Ring size of the per-(tenant, op, generation) service profile.
    max_profile: int = 512
    #: Max relative p50/p99 movement between consecutive ticks for a
    #: tick to count as steady (rules out still-filling queues).
    drift_tol: float = 0.25
    #: Adapt the fault-transient guard envelope to the observed service
    #: ceiling (plus token-bucket reservation slack), instead of the
    #: fixed ``lookahead_ns`` margin.  Keeps analytic in-flight tails
    #: from straddling a mid-window transient on short runs.
    adaptive_envelope: bool = True
    #: Multiplier applied per escalation when a splice-back still finds
    #: analytic tails inside a blackout margin (envelope re-validation).
    envelope_growth: float = 1.5
    #: Hard cap on the adaptive envelope, in ns.
    max_envelope_ns: float = 300_000.0
    #: Declared relative tolerance on p50/p99 vs pure DES.
    latency_tol: float = 0.35
    #: Declared relative tolerance on goodput vs pure DES.
    goodput_tol: float = 0.15

    def __post_init__(self):
        if self.guard_ns < 0 or self.lookahead_ns < 0:
            raise ValueError("guard/lookahead windows must be >= 0")
        if self.stable_ticks < 1:
            raise ValueError(f"stable_ticks must be >= 1: {self.stable_ticks}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1: {self.min_samples}")
        for name in ("drift_tol", "latency_tol", "goodput_tol"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be >= 0: {getattr(self, name)}")
        if self.envelope_growth < 1.0:
            raise ValueError(
                f"envelope_growth must be >= 1: {self.envelope_growth}")
        if self.max_envelope_ns < 0:
            raise ValueError(
                f"max_envelope_ns must be >= 0: {self.max_envelope_ns}")


class _AnalyticTenant:
    """One tenant's deterministic recurrence state while fast-forwarded."""

    __slots__ = ("state", "queue", "worker_free", "pending", "sentinels",
                 "armed", "next_seq", "next_at", "resume", "profiles",
                 "cursors", "degraded_service")

    def __init__(self, state, backlog, sentinels, now, n_workers,
                 profiles, degraded_service):
        self.state = state                  # the runtime's _TenantState
        self.queue = backlog                # admitted, not yet picked up
        self.worker_free = [now] * n_workers
        heapq.heapify(self.worker_free)
        self.pending: List[tuple] = []      # (end, seq, op, arrived, degr)
        self.sentinels = sentinels          # drained worker-exit Nones
        self.armed = False                  # arrival proc handed over?
        self.next_seq = state.spec.requests
        self.next_at = now
        self.resume = None                  # handover resume event
        self.profiles: Dict[Opcode, Tuple[float, ...]] = profiles
        self.cursors: Dict[Opcode, int] = {op: 0 for op in profiles}
        self.degraded_service = degraded_service

    def draw(self, op: Opcode) -> float:
        """Next service time: cyclic replay of the recorded profile."""
        profile = self.profiles.get(op)
        if not profile:
            # Op never observed under this lease generation (possible
            # only for a zero-probability op raced onto the stream);
            # fall back to the mean of everything we have.
            pooled = [s for p in self.profiles.values() for s in p]
            return sum(pooled) / len(pooled) if pooled else 1_000.0
        i = self.cursors[op]
        self.cursors[op] = (i + 1) % len(profile)
        return profile[i]


class HybridController:
    """Flips a serving run between DES and the analytic recurrence."""

    def __init__(self, runtime, tracker, faults=None,
                 tick_ns: float = 20_000.0,
                 config: Optional[HybridConfig] = None):
        if tick_ns <= 0:
            raise ValueError(f"tick must be positive: {tick_ns}")
        self.runtime = runtime
        self.tracker = tracker
        self.sim = runtime.sim
        self.tick_ns = tick_ns
        self.config = config or HybridConfig()
        self.mode = GUARD
        self.guard_until = self.config.guard_ns
        self._stable = 0
        self._lost_seen = 0
        self._last_stats: Dict[str, Tuple[float, float]] = {}
        self._tenants: Dict[str, _AnalyticTenant] = {}
        #: (tenant, op, lease generation) -> recent service durations.
        self._profiles: Dict[tuple, deque] = {}
        self._blackouts = self._fault_blackouts(faults)
        # Adaptive guard envelope: the blackout margin grows with the
        # observed service-time ceiling (so analytic in-flight tails
        # finish strictly before any fault transient), escalates when a
        # splice-back proves it too small, and relaxes again after a
        # clean re-validation.
        self._service_ceiling = 0.0
        self._escalations = 0
        # Engagement statistics (surfaced via ServeReport.hybrid_stats).
        self.flips = 0
        self.splices = 0
        self.escalations = 0
        self.analytic_completions = 0
        self.analytic_arrivals = 0

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> "HybridController":
        """Hook into the runtime and start the control process."""
        self.runtime.hybrid = self
        self.sim.process(self._run())
        return self

    def _run(self):
        # URGENT ticks fire before the scheduler's NORMAL tick at equal
        # timestamps, so the tracker is advanced to "now" before any
        # decision reads it.
        while not self.runtime.done:
            yield self.sim.timeout(self.tick_ns, priority=URGENT)
            self._tick()

    def stats(self) -> dict:
        return {"flips": self.flips, "splices": self.splices,
                "escalations": self.escalations,
                "analytic_arrivals": self.analytic_arrivals,
                "analytic_completions": self.analytic_completions}

    # -- runtime hooks ------------------------------------------------------

    def record_service(self, tenant: str, op: Opcode,
                       service_ns: float) -> None:
        """DES completion feed: grow the empirical service profile."""
        t = self.runtime._tenants[tenant]
        key = (tenant, op, t.lease.generation if t.lease else 0)
        profile = self._profiles.get(key)
        if profile is None:
            profile = self._profiles[key] = deque(
                maxlen=self.config.max_profile)
        profile.append(service_ns)
        if service_ns > self._service_ceiling:
            self._service_ceiling = service_ns

    def wants(self, t) -> bool:
        """Should this tenant's arrival process hand over its stream?"""
        return t.spec.name in self._tenants

    def handover(self, t, seq: int):
        """Called *from* the arrival process at an arrival instant.

        Arms the tenant's recurrence starting at arrival ``seq`` (whose
        nominal time is now) and parks the process until splice-back.
        Returns the next event-mode sequence number, with the clock at
        that arrival's instant.
        """
        at = self._tenants[t.spec.name]
        at.armed = True
        at.next_seq = seq
        at.next_at = self.sim.now
        at.resume = self.sim.event()
        self._advance_tenant(at, self.sim.now)
        new_seq, resume_at = yield at.resume
        if resume_at > self.sim.now:
            yield self.sim.timeout(resume_at - self.sim.now)
        return new_seq

    def on_decision(self, decision) -> None:
        """Scheduler listener: any decision is a transient."""
        self._reguard(self.sim.now)

    # -- one control tick ---------------------------------------------------

    def _tick(self) -> None:
        now = self.sim.now
        if self.mode is ANALYTIC:
            self._advance_all(now)
            self._release_finished(now)
            margin = self.envelope_ns()
            if self._tenants and self._blackout_within(
                    now, now + self.tick_ns + margin, margin):
                self._reguard(now)
            elif not self._tenants:
                self.mode = GUARD
            return
        if self._steady(now):
            self._stable += 1
            if self._stable >= self.config.stable_ticks:
                self._flip_analytic(now)
        else:
            self._stable = 0

    # -- steadiness ---------------------------------------------------------

    def envelope_ns(self) -> float:
        """The current fault-transient margin around blackout windows.

        With ``adaptive_envelope`` this is the worst analytic in-flight
        tail the recurrence can create beyond a settle horizon: the
        observed service-time ceiling plus the widest token-bucket
        reservation slack (``workers`` requests reserved ahead at the
        capped rate), escalated geometrically while splice-backs keep
        proving it too small.  Never below ``lookahead_ns``; capped at
        ``max_envelope_ns``.
        """
        cfg = self.config
        if not cfg.adaptive_envelope:
            return cfg.lookahead_ns
        slack = 0.0
        for spec in self.runtime.specs:
            t = self.runtime._tenants[spec.name]
            lease = t.lease
            if lease is not None and lease.rate_cap_gbps:
                slack = max(slack, spec.workers * max(1, spec.payload)
                            / gbps(lease.rate_cap_gbps))
        margin = ((self._service_ceiling + slack)
                  * cfg.envelope_growth ** self._escalations)
        return min(cfg.max_envelope_ns, max(cfg.lookahead_ns, margin))

    def _steady(self, now: float) -> bool:
        cfg = self.config
        margin = self.envelope_ns()
        steady = (now >= self.guard_until
                  and not self._blackout_within(
                      now, now + self.tick_ns + margin, margin))
        xshard = getattr(self.runtime, "xshard", None)
        exported = frozenset(xshard.exports) if xshard is not None else ()
        lost = sum(self.tracker.lost.values())
        if lost != self._lost_seen:
            self._lost_seen = lost
            steady = False
        previous = self._last_stats
        current: Dict[str, Tuple[float, float]] = {}
        any_active = False
        for spec in self.runtime.specs:
            t = self.runtime._tenants[spec.name]
            if t.arrivals_done and t.finished >= t.admitted:
                continue                    # fully drained
            any_active = True
            if spec.name in exported:
                # Cross-shard senders stay at event level: the analytic
                # recurrence completes requests without the runtime's
                # finish hook, so fast-forwarding would drop their
                # fabric sends (bulk shipping / remote relays).
                steady = False
            if t.lease is None:
                steady = False
                continue
            stats = self.tracker.window(spec.name, now)
            current[spec.name] = (stats.p50_ns, stats.p99_ns)
            if stats.count < cfg.min_samples:
                steady = False
                continue
            if stats.rejected and t.bucket is None:
                # Rejections without a rate cap mean an overloaded
                # equilibrium whose admission counts hinge on exact
                # congestion timing — never fast-forward those.
                steady = False
                continue
            prev = previous.get(spec.name)
            if prev is None:
                steady = False
            elif (abs(stats.p50_ns - prev[0]) > cfg.drift_tol * max(prev[0], 1.0)
                  or abs(stats.p99_ns - prev[1])
                  > cfg.drift_tol * max(prev[1], 1.0)):
                steady = False              # latency still trending
            if t.lease.degraded:
                continue                    # deterministic host relay
            generation = t.lease.generation
            for op in self._mix_ops(spec):
                profile = self._profiles.get((spec.name, op, generation))
                if profile is None or len(profile) < cfg.min_samples:
                    steady = False
        self._last_stats = current
        return steady and any_active

    @staticmethod
    def _mix_ops(spec) -> List[Opcode]:
        ops = []
        if spec.mix.read > 0:
            ops.append(Opcode.READ)
        if spec.mix.write > 0:
            ops.append(Opcode.WRITE)
        if spec.mix.send > 0:
            ops.append(Opcode.SEND)
        return ops

    def _fault_blackouts(self, faults) -> List[Tuple[float, Optional[float]]]:
        """(start, end) windows where analytic mode is forbidden."""
        windows: List[Tuple[float, Optional[float]]] = []
        if faults is None:
            return windows
        for fault in faults.faults:
            at = getattr(fault, "at", None)
            if at is not None:              # SocCrash: two point transients
                windows.append((at, at))
                if fault.recover_at is not None:
                    windows.append((fault.recover_at, fault.recover_at))
            else:
                windows.append((fault.start, fault.end))
        return windows

    def _blackout_within(self, start: float, end: float,
                         margin: Optional[float] = None) -> bool:
        cfg = self.config
        if margin is None:
            margin = cfg.lookahead_ns
        for w_start, w_end in self._blackouts:
            lo = w_start - margin
            hi = (float("inf") if w_end is None
                  else w_end + cfg.guard_ns)
            if start < hi and end > lo:
                return True
        return False

    # -- GUARD -> ANALYTIC --------------------------------------------------

    def _flip_analytic(self, now: float) -> None:
        runtime = self.runtime
        self._tenants = {}
        for spec in runtime.specs:
            t = runtime._tenants[spec.name]
            if t.arrivals_done and t.finished >= t.admitted:
                continue
            drained = t.queue.drain()
            sentinels = sum(1 for item in drained if item is None)
            backlog = deque(item for item in drained if item is not None)
            n_workers = spec.workers if not t.arrivals_done else sentinels
            degraded_service = (self._degraded_service(spec)
                                if t.lease.degraded else 0.0)
            generation = t.lease.generation
            profiles = {
                op: tuple(self._profiles.get((spec.name, op, generation), ()))
                for op in self._mix_ops(spec)}
            self._tenants[spec.name] = _AnalyticTenant(
                t, backlog, sentinels, now, max(1, n_workers),
                profiles, degraded_service)
        if not self._tenants:
            return
        self.mode = ANALYTIC
        self.flips += 1
        if self._escalations:
            # Clean re-validation: the (possibly escalated) envelope
            # admitted a flip again — relax it one step.
            self._escalations -= 1

    def _degraded_service(self, spec) -> float:
        from repro.sched.runtime import _RELAY_GIBPS
        host = self.runtime.cluster.node("host")
        return (host.cpu.two_sided_latency_ns
                + max(1, spec.payload) / gib_per_s(_RELAY_GIBPS))

    # -- the recurrence -----------------------------------------------------

    def _advance_all(self, now: float) -> None:
        for at in self._tenants.values():
            self._advance_tenant(at, now)

    def _advance_tenant(self, at: _AnalyticTenant, horizon: float) -> None:
        """Synthesize arrivals and completions up to ``horizon``."""
        t = at.state
        spec = t.spec
        tracker = self.tracker
        cluster = self.runtime.cluster
        interval = spec.interval_ns
        while at.armed and at.next_seq < spec.requests \
                and at.next_at <= horizon:
            arrived = at.next_at
            self._settle(at, arrived)
            op, _payload, _addr = next(t.stream)
            if len(at.queue) >= spec.queue_limit:
                tracker.observe_reject(spec.name, arrived)
                cluster.bump("sched.rejected")
            else:
                t.admitted += 1
                at.queue.append((at.next_seq, op, arrived))
            self.analytic_arrivals += 1
            at.next_seq += 1
            at.next_at = arrived + interval
        self._settle(at, horizon)
        self._flush(at, horizon)

    def _settle(self, at: _AnalyticTenant, upto: float) -> None:
        """Assign queued items to workers freeing up by ``upto``."""
        t = at.state
        spec = t.spec
        queue = at.queue
        free = at.worker_free
        pending = at.pending
        bucket = t.bucket
        degraded = t.lease.degraded
        while queue and free and free[0] <= upto:
            freed = heapq.heappop(free)
            seq, op, arrived = queue.popleft()
            start = freed if freed > arrived else arrived
            if degraded:
                end = start + at.degraded_service
            else:
                if bucket is not None:
                    delay = bucket.delay_for(spec.payload, start)
                    if delay > 0:
                        start += delay
                end = start + at.draw(op)
            heapq.heappush(free, end)
            heapq.heappush(pending, (end, seq, op, arrived, degraded))

    def _flush(self, at: _AnalyticTenant, upto: float) -> None:
        """Materialize synthesized completions due by ``upto``."""
        pending = at.pending
        while pending and pending[0][0] <= upto:
            end, seq, op, arrived, degraded = heapq.heappop(pending)
            self._complete(at.state, end, seq, op, arrived, degraded)

    def _complete(self, t, end: float, seq: int, op: Opcode,
                  arrived: float, degraded: bool) -> None:
        record = CompletionRecord(
            tenant=t.spec.name, seq=seq, op=op.value, path=t.lease.path,
            start_ns=arrived, end_ns=end, ok=True, attempts=1,
            degraded=degraded)
        t.finished += 1
        if degraded:
            t.degraded_served += 1
        self.runtime.completions.append(record)
        self.tracker.observe(record, t.spec.payload)
        self.analytic_completions += 1

    def _release_finished(self, now: float) -> None:
        """Hand fully-synthesized tenants back so their processes exit."""
        for name, at in list(self._tenants.items()):
            t = at.state
            if at.queue or at.pending:
                continue
            if at.armed:
                if at.next_seq >= t.spec.requests:
                    at.resume.succeed((at.next_seq, now))
                    del self._tenants[name]
            elif t.arrivals_done:
                for _ in range(at.sentinels):
                    t.queue.put(None)
                del self._tenants[name]

    # -- ANALYTIC -> GUARD --------------------------------------------------

    def _reguard(self, now: float) -> None:
        """Open a guard window; splice live state back to event level."""
        self.guard_until = max(self.guard_until,
                               now + self.config.guard_ns)
        self._stable = 0
        if self.mode is not ANALYTIC:
            return
        self._splice_back(now)

    def _splice_back(self, now: float) -> None:
        if self.config.adaptive_envelope:
            # Envelope re-validation: if any analytic in-flight tail
            # still reaches into a blackout margin, the envelope was
            # too small — grow it and hold the guard window until the
            # tails are flushed, then require a fresh steadiness pass.
            worst_end = max((entry[0] for at in self._tenants.values()
                             for entry in at.pending), default=now)
            if worst_end > now and self._blackout_within(
                    now, worst_end + self.tick_ns, 0.0):
                self._escalations += 1
                self.escalations += 1
                self.guard_until = max(self.guard_until,
                                       worst_end + self.config.guard_ns)
        for name, at in self._tenants.items():
            t = at.state
            # In-flight synthesized requests: park one worker per item
            # until its analytic completion instant, and complete the
            # record from a stub process at that instant.
            for entry in sorted(at.pending):
                end, seq, op, arrived, degraded = entry
                t.queue.put(("hold", end))
                self.sim.process(
                    self._stub(t, end, seq, op, arrived, degraded))
            at.pending = []
            for item in at.queue:
                t.queue.put(item)
            for _ in range(at.sentinels):
                t.queue.put(None)
            if at.armed:
                at.resume.succeed((at.next_seq, at.next_at))
        self._tenants = {}
        self.mode = GUARD
        self.splices += 1

    def _stub(self, t, end: float, seq: int, op: Opcode,
              arrived: float, degraded: bool):
        delay = end - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        self._complete(t, self.sim.now, seq, op, arrived, degraded)
