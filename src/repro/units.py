"""Unit conventions and conversion helpers used across the library.

The whole code base uses a single internal unit system:

* **time** — nanoseconds (``float``),
* **size** — bytes (``int``),
* **bandwidth** — bytes per nanosecond (``float``; numerically equal to
  GB/s, which keeps calibration constants readable),
* **rates** — events per nanosecond internally, exposed to users as
  per-second values through the helpers below.

Every public API that accepts or returns a physical quantity says so in
its docstring; these helpers are the only sanctioned way to convert.
"""

from __future__ import annotations

# -- size ------------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# -- time ------------------------------------------------------------------

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SEC = 1_000_000_000.0


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / US


def us_to_ns(us: float) -> float:
    """Convert microseconds to nanoseconds."""
    return us * US


# -- bandwidth ---------------------------------------------------------------


def gbps(gigabits_per_second: float) -> float:
    """Convert a link speed in Gbps to internal bytes/ns.

    1 Gbps = 0.125 GB/s = 0.125 bytes/ns.
    """
    return gigabits_per_second / 8.0


def to_gbps(bytes_per_ns: float) -> float:
    """Convert internal bytes/ns back to Gbps."""
    return bytes_per_ns * 8.0


def gib_per_s(gibibytes_per_second: float) -> float:
    """Convert GiB/s (memory-vendor convention) to bytes/ns."""
    return gibibytes_per_second * GB / SEC


# -- rates -------------------------------------------------------------------


def mpps(millions_per_second: float) -> float:
    """Convert a packet/request rate in Mpps to events per nanosecond."""
    return millions_per_second * 1e6 / SEC


def to_mpps(events_per_ns: float) -> float:
    """Convert events/ns to millions of events per second."""
    return events_per_ns * SEC / 1e6


def mrps(millions_per_second: float) -> float:
    """Alias of :func:`mpps` for request (not packet) rates."""
    return mpps(millions_per_second)


def to_mrps(events_per_ns: float) -> float:
    """Alias of :func:`to_mpps` for request (not packet) rates."""
    return to_mpps(events_per_ns)


def per_second(events_per_ns: float) -> float:
    """Convert events/ns to events/s."""
    return events_per_ns * SEC


# -- formatting --------------------------------------------------------------


def fmt_size(nbytes: float) -> str:
    """Human-readable byte size (``4.0KB``, ``9MB`` ...)."""
    if nbytes >= GB:
        return f"{nbytes / GB:g}GB"
    if nbytes >= MB:
        return f"{nbytes / MB:g}MB"
    if nbytes >= KB:
        return f"{nbytes / KB:g}KB"
    return f"{nbytes:g}B"


def fmt_gbps(bytes_per_ns: float) -> str:
    """Format a bandwidth as Gbps with one decimal."""
    return f"{to_gbps(bytes_per_ns):.1f} Gbps"


def fmt_ns(ns: float) -> str:
    """Format a duration, picking ns or us as appropriate."""
    if ns >= US:
        return f"{ns / US:.2f} us"
    return f"{ns:.0f} ns"
