"""A discrete-event instantiation of the testbed: nodes, links, fabric.

:class:`SimCluster` turns a :class:`~repro.net.topology.Testbed` into
live simulation objects: one node per client machine, a host (and, for
the SmartNIC build-out, a SoC) per server, duplex network channels
through the InfiniBand switch, and each SmartNIC's internal PCIe fabric.
The RDMA stack (:mod:`repro.rdma`) executes verbs against these objects,
so latency and byte movement are simulated rather than computed.

Multiple servers are supported (``n_servers``), matching the testbed's
three SRV machines: server 0 owns nodes ``host``/``soc``; additional
servers own ``host1``/``soc1`` and so on.  Cross-server RDMA goes over
the fabric like any client traffic; path-③ semantics apply only within
one server.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING, Union

from repro.hw.cpu import CPUSpec
from repro.net.topology import Testbed
from repro.nic.core import Endpoint
from repro.nic.rnic import RNIC
from repro.nic.smartnic import SmartNIC
from repro.sim import DuplexChannel, Resource, Simulator
from repro.units import GB

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.rdma.qp import QueuePair

# Concurrent processing units inside a server NIC's verb pipeline.
# With service time = units / verb_rate per op, the aggregate saturates
# exactly at the spec's verb rate while single requests see only one
# unit's worth of service time.
NIC_PIPELINE_UNITS = 16


@dataclass
class Node:
    """One CPU complex with memory that can own QPs.

    ``kind`` is ``"client"``, ``"host"`` or ``"soc"``.  ``memory`` is a
    real byte store so applications move actual data.  Server nodes
    carry the name of the server they live on.
    """

    name: str
    kind: str
    cpu: CPUSpec
    memory_bytes: int
    server: Optional[str] = None
    cluster: Optional["SimCluster"] = field(repr=False, default=None)
    # Set by a fault injector's SoC-crash (or recovery); a crashed
    # node's memory is unreachable and inbound packets are lost.
    crashed: bool = field(repr=False, default=False)

    def __post_init__(self):
        if self.kind not in ("client", "host", "soc"):
            raise ValueError(f"unknown node kind: {self.kind}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory must be positive: {self.memory_bytes}")
        if (self.server is None) == (self.kind != "client"):
            raise ValueError("server nodes need a server name; clients none")

    @property
    def on_server(self) -> bool:
        return self.kind in ("host", "soc")

    @property
    def endpoint(self) -> Optional[Endpoint]:
        if self.kind == "host":
            return Endpoint.HOST
        if self.kind == "soc":
            return Endpoint.SOC
        return None

    def same_server_as(self, other: "Node") -> bool:
        return (self.server is not None and other.server is not None
                and self.server == other.server)


@dataclass
class ServerInstance:
    """One SRV machine: its NIC build-out and shared NIC pipeline."""

    name: str
    snic: Optional[SmartNIC]
    rnic: Optional[RNIC]
    channel: DuplexChannel
    pipeline: Resource
    service_ns: float

    @property
    def cores(self):
        if self.snic is not None:
            return self.snic.spec.cores
        return self.rnic.spec.cores

    def dma_route(self, endpoint: Endpoint):
        """(dma_engine, route, mps) for a DMA to ``endpoint`` memory."""
        if self.snic is not None:
            return (self.snic.dma, self.snic.route_to(endpoint),
                    self.snic.mps_for(endpoint))
        if endpoint is not Endpoint.HOST:
            raise ValueError("the RNIC build-out has no SoC endpoint")
        return (self.rnic.dma, self.rnic.route_to_host(),
                self.rnic.host_mps)


class SimCluster:
    """The live simulation of one testbed.

    ``nic`` selects the server build-out: ``"snic"`` (the Bluefield,
    with a SoC node and internal fabric) or ``"rnic"`` (the ConnectX
    baseline — host only, a single PCIe link).
    """

    def __init__(self, testbed: Testbed, sim: Optional[Simulator] = None,
                 n_clients: int = 2, client_memory: int = 1 * GB,
                 host_memory: int = 4 * GB, nic: str = "snic",
                 n_servers: int = 1):
        if n_clients < 1:
            raise ValueError(f"need at least one client: {n_clients}")
        if n_clients > testbed.n_clients:
            raise ValueError(
                f"testbed has only {testbed.n_clients} client machines")
        if nic not in ("snic", "rnic"):
            raise ValueError(f"unknown NIC build-out: {nic!r}")
        if not 1 <= n_servers <= 3:
            raise ValueError("the testbed has 1-3 SRV machines (Table 2)")
        self.testbed = testbed
        self.sim = sim or Simulator()
        self.nic_mode = nic

        self.nodes: Dict[str, Node] = {}
        self._channels: Dict[str, DuplexChannel] = {}
        self.servers: Dict[str, ServerInstance] = {}

        # QP bookkeeping is scoped to this cluster (not process-global)
        # so back-to-back simulations get identical QPNs and can never
        # observe each other's QPs.
        self._qp_registry: Dict[int, "QueuePair"] = {}
        self._qpn_counter = itertools.count(100)
        # Reliability/fault counters, read by Telemetry.snapshot().
        self.stats: Dict[str, float] = {}
        self.fault_injector: Optional["FaultInjector"] = None

        fabric = testbed.fabric
        for k in range(n_servers):
            suffix = "" if k == 0 else str(k)
            server_name = f"server{k}"
            snic = rnic = None
            if nic == "snic":
                snic = testbed.snic if k == 0 else SmartNIC(
                    testbed.snic.spec, host_memory=testbed.snic.host_memory)
                if snic.sim is not self.sim:
                    snic.instantiate(self.sim)
                cores = snic.spec.cores
            else:
                rnic = testbed.rnic if k == 0 else RNIC(
                    testbed.rnic.spec, host_memory=testbed.rnic.host_memory)
                if rnic.sim is not self.sim:
                    rnic.instantiate(self.sim)
                cores = rnic.spec.cores
            channel = DuplexChannel(
                self.sim, cores.network_bandwidth,
                latency=fabric.one_way_latency() / 2,
                name=f"net.{server_name}")
            server = ServerInstance(
                name=server_name, snic=snic, rnic=rnic, channel=channel,
                pipeline=Resource(self.sim, capacity=NIC_PIPELINE_UNITS),
                service_ns=NIC_PIPELINE_UNITS / cores.verb_rate_host_only)
            self.servers[server_name] = server
            self._add_node(Node(f"host{suffix}", "host", testbed.host_cpu,
                                host_memory, server=server_name))
            if snic is not None:
                self._add_node(Node(f"soc{suffix}", "soc", snic.soc.cpu,
                                    snic.soc.dram_bytes, server=server_name))

        for i in range(n_clients):
            name = f"client{i}"
            self._add_node(Node(name, "client", testbed.client_cpu,
                                client_memory))
            client_bw = min(testbed.client_nic.cores.network_bandwidth,
                            fabric.port_bandwidth)
            self._channels[name] = DuplexChannel(
                self.sim, client_bw, latency=fabric.one_way_latency(),
                name=f"net.{name}")

    # -- server access -----------------------------------------------------------

    @property
    def _server0(self) -> ServerInstance:
        return self.servers["server0"]

    @property
    def snic(self) -> Optional[SmartNIC]:
        """Server 0's SmartNIC (None in the RNIC build-out)."""
        return self._server0.snic

    @property
    def rnic(self) -> Optional[RNIC]:
        """Server 0's RNIC (None in the SmartNIC build-out)."""
        return self._server0.rnic

    @property
    def server_cores(self):
        """Server 0's NIC core spec (single-server convenience)."""
        return self._server0.cores

    @property
    def nic_pipeline(self) -> Resource:
        return self._server0.pipeline

    @property
    def nic_service_ns(self) -> float:
        return self._server0.service_ns

    def server_of(self, node: Node) -> ServerInstance:
        """The server instance a server-side node lives on."""
        if node.server is None:
            raise ValueError(f"{node.name} is not a server node")
        return self.servers[node.server]

    def dma_route(self, target: Union[Node, Endpoint]):
        """(dma_engine, route, mps) for a DMA into ``target``.

        Accepts a server-side node, or a bare endpoint (resolved on
        server 0 for single-server convenience).
        """
        if isinstance(target, Node):
            return self.server_of(target).dma_route(target.endpoint)
        return self._server0.dma_route(target)

    # -- queue-pair registry -------------------------------------------------------

    def register_qp(self, qp: "QueuePair") -> int:
        """Assign the next QPN of this cluster and index the QP."""
        qpn = next(self._qpn_counter)
        self._qp_registry[qpn] = qp
        return qpn

    def qp_by_qpn(self, qpn: int) -> "QueuePair":
        """Resolve a QP number (e.g. a completion's source) to its QP."""
        from repro.rdma.qp import QPError

        try:
            return self._qp_registry[qpn]
        except KeyError:
            raise QPError(f"unknown QPN {qpn}") from None

    def qps_on(self, node: Node) -> List["QueuePair"]:
        """All QPs owned by ``node``, in creation order."""
        return [qp for qp in self._qp_registry.values() if qp.node is node]

    # -- reliability / fault bookkeeping -------------------------------------------

    def bump(self, key: str, amount: float = 1.0) -> None:
        """Increment a cluster-level counter (telemetry surface)."""
        self.stats[key] = self.stats.get(key, 0.0) + amount

    def install_faults(self, plan: "FaultPlan",
                       seed: int = 0) -> "FaultInjector":
        """Install a fault plan; returns the (already armed) injector."""
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(self, plan, seed=seed)
        injector.install()
        return injector

    # -- node access -------------------------------------------------------------

    def _add_node(self, node: Node) -> None:
        node.cluster = self
        self.nodes[node.name] = node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"no node named {name!r}") from None

    def clients(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind == "client"]

    def channel(self, node: Node) -> DuplexChannel:
        """The network channel a node's traffic traverses."""
        if node.on_server:
            return self.server_of(node).channel
        return self._channels[node.name]

    def memory_subsystem_of(self, node: Node):
        """The memory hierarchy behind a node's DMA endpoint.

        ``None`` for clients (their memory is not a modelled DMA target);
        used by the span tracer to attribute memory touches to the LLC
        or DRAM access path.
        """
        if not node.on_server:
            return None
        server = self.server_of(node)
        if server.snic is not None:
            return server.snic.memory_of(node.endpoint)
        return server.rnic.host_memory

    @property
    def server_channel(self) -> DuplexChannel:
        """Server 0's network channel (single-server convenience)."""
        return self._server0.channel
