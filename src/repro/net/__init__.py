"""Network fabric and testbed topology (Table 2)."""

from repro.net.fabric import FabricSpec, DEFAULT_FABRIC
from repro.net.topology import Testbed, paper_testbed
from repro.net.cluster import Node, ServerInstance, SimCluster

__all__ = ["FabricSpec", "DEFAULT_FABRIC", "Testbed", "paper_testbed",
           "Node", "ServerInstance", "SimCluster"]
