"""The InfiniBand fabric connecting servers and clients.

The paper's testbed uses one Mellanox SB7890 100 Gbps switch; the
200 Gbps NICs attach with two 100 Gbps ports so the fabric never limits
them (§2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import gbps


@dataclass(frozen=True)
class FabricSpec:
    """A single-switch fabric: per-port speed and hop latencies."""

    ports: int = 36
    port_gbps: float = 100.0
    switch_latency_ns: float = 110.0   # per switch traversal
    cable_latency_ns: float = 200.0    # end-to-end propagation, one way

    def __post_init__(self):
        if self.ports < 2 or self.port_gbps <= 0:
            raise ValueError("fabric needs >= 2 ports of positive speed")

    @property
    def port_bandwidth(self) -> float:
        """One port's per-direction bandwidth, bytes/ns."""
        return gbps(self.port_gbps)

    def one_way_latency(self) -> float:
        """Propagation through one cable pair and the switch, ns."""
        return self.cable_latency_ns + self.switch_latency_ns


DEFAULT_FABRIC = FabricSpec()
