"""The rack-scale testbed of Table 2, as one queryable object."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.cpu import CPUSpec
from repro.net.fabric import FabricSpec, DEFAULT_FABRIC
from repro.nic.rnic import RNIC
from repro.nic.smartnic import SmartNIC
from repro.nic.specs import (
    BLUEFIELD2,
    CLIENT_SIDE_DOORBELL,
    CONNECTX4,
    CONNECTX6,
    DoorbellCosts,
    RNICSpec,
    CLIENT_CPU,
    HOST_CPU,
)


@dataclass(frozen=True)
class Testbed:
    """Machines, NICs and fabric of one experiment cluster.

    ``snic`` and ``rnic`` describe the server NIC in its two build-outs
    (the SRV machines can host either a Bluefield-2 or a ConnectX-6,
    Table 2); ``n_clients`` CLI machines issue requests.
    """

    __test__ = False  # not a pytest collection target

    snic: SmartNIC
    rnic: RNIC
    host_cpu: CPUSpec = HOST_CPU
    client_cpu: CPUSpec = CLIENT_CPU
    client_nic: RNICSpec = CONNECTX4
    client_doorbell: DoorbellCosts = CLIENT_SIDE_DOORBELL
    n_clients: int = 20
    fabric: FabricSpec = DEFAULT_FABRIC

    def __post_init__(self):
        if self.n_clients < 1:
            raise ValueError(f"need at least one client: {self.n_clients}")

    def client_issue_capacity(self, machines: int,
                              doorbell_batch: int = 1) -> float:
        """Aggregate posting rate (reqs/ns) of ``machines`` clients."""
        machines = self._clamp_clients(machines)
        cost = self._post_cost(self.client_doorbell, doorbell_batch)
        return machines * self.client_cpu.total_cores / cost

    def host_issue_capacity(self, threads: int = None,
                            doorbell_batch: int = 1) -> float:
        """Posting rate (reqs/ns) of the host acting as path-3 requester."""
        threads = threads or self.host_cpu.total_cores
        cost = self._post_cost(self.snic.spec.host_doorbell, doorbell_batch)
        return min(threads, self.host_cpu.total_cores) / cost

    def soc_issue_capacity(self, threads: int = None,
                           doorbell_batch: int = 1) -> float:
        """Posting rate (reqs/ns) of the SoC acting as path-3 requester."""
        soc = self.snic.soc
        threads = threads or soc.cpu.total_cores
        cost = self._post_cost(soc.doorbell, doorbell_batch)
        return min(threads, soc.cpu.total_cores) / cost

    def client_network_capacity(self, machines: int) -> float:
        """Aggregate per-direction client NIC bandwidth, bytes/ns."""
        machines = self._clamp_clients(machines)
        per_client = self.client_nic.cores.network_bandwidth
        return machines * min(per_client, self.fabric.port_bandwidth)

    @staticmethod
    def _post_cost(doorbell: DoorbellCosts, batch: int) -> float:
        if batch <= 1:
            return doorbell.per_request
        return doorbell.batched_cost_per_request(batch)

    def _clamp_clients(self, machines: int) -> int:
        if machines < 1:
            raise ValueError(f"need at least one machine: {machines}")
        return min(machines, self.n_clients)


def paper_testbed(n_clients: int = 20) -> Testbed:
    """The exact cluster of Table 2."""
    return Testbed(snic=SmartNIC(BLUEFIELD2), rnic=RNIC(CONNECTX6),
                   n_clients=n_clients)
