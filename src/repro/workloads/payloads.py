"""The parameter grids the paper's figures sweep."""

from __future__ import annotations

from typing import List

from repro.units import KB, MB, GB


def power_of_two_sweep(start: int, end: int) -> List[int]:
    """Powers of two from ``start`` to ``end`` inclusive."""
    if start <= 0 or end < start:
        raise ValueError(f"bad sweep bounds: [{start}, {end}]")
    values = []
    value = start
    while value <= end:
        values.append(value)
        value *= 2
    return values


# Fig 4: small-to-medium payloads for latency and peak throughput.
FIG4_PAYLOADS = power_of_two_sweep(16, 16 * KB)

# Fig 7: responder address ranges, 1.5 KB up to 10 GB.
FIG7_RANGES = [1536, 3 * KB, 6 * KB, 12 * KB, 24 * KB, 48 * KB, 96 * KB,
               192 * KB, 768 * KB, 3 * MB, 48 * MB, 768 * MB, 10 * GB]

# Fig 8: payloads into the head-of-line collapse region (> 9 MB).
FIG8_PAYLOADS = [64 * KB, 256 * KB, 1 * MB, 4 * MB, 8 * MB, 9 * MB,
                 12 * MB, 16 * MB, 32 * MB, 64 * MB]

# Fig 9: host<->SoC transfer sizes.
FIG9_PAYLOADS = [16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB,
                 64 * MB]

# Fig 10(b): doorbell batch sizes.
FIG10_BATCHES = [1, 8, 16, 32, 48, 64, 80]

# Fig 11: requester machine counts.
FIG11_MACHINES = list(range(1, 12))
