"""Operation mixes and request streams."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.paths import Opcode


@dataclass(frozen=True)
class OpMix:
    """A read/write/send probability mix."""

    read: float = 0.5
    write: float = 0.5
    send: float = 0.0

    def __post_init__(self):
        total = self.read + self.write + self.send
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix must sum to 1, got {total}")
        if min(self.read, self.write, self.send) < 0:
            raise ValueError("mix fractions must be >= 0")

    def sample(self, rng: random.Random) -> Opcode:
        roll = rng.random()
        if roll < self.read:
            return Opcode.READ
        if roll < self.read + self.write:
            return Opcode.WRITE
        return Opcode.SEND


class RequestStream:
    """An endless deterministic stream of (opcode, payload, address)."""

    def __init__(self, mix: OpMix, pattern, seed: int = 0):
        self.mix = mix
        self.pattern = pattern
        self.rng = random.Random(seed)

    def __iter__(self) -> Iterator:
        return self

    def __next__(self):
        opcode = self.mix.sample(self.rng)
        return opcode, self.pattern.payload, self.pattern.next()

    def take(self, n: int):
        """The next ``n`` requests as a list."""
        if n < 0:
            raise ValueError(f"negative count: {n}")
        return [next(self) for _ in range(n)]
