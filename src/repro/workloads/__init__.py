"""Workload generators: payload sweeps, access patterns, op mixes."""

from repro.workloads.payloads import (
    FIG4_PAYLOADS,
    FIG7_RANGES,
    FIG8_PAYLOADS,
    FIG9_PAYLOADS,
    FIG10_BATCHES,
    FIG11_MACHINES,
    power_of_two_sweep,
)
from repro.workloads.access import (
    UniformPattern,
    RangeLimitedPattern,
    ZipfPattern,
)
from repro.workloads.mix import OpMix, RequestStream
from repro.workloads.traces import Trace, TraceRecord
from repro.workloads.population import (
    PopulationSample,
    PopulationSpec,
    RandomVar,
    sample_population,
)

__all__ = [
    "Trace",
    "TraceRecord",
    "FIG4_PAYLOADS",
    "FIG7_RANGES",
    "FIG8_PAYLOADS",
    "FIG9_PAYLOADS",
    "FIG10_BATCHES",
    "FIG11_MACHINES",
    "power_of_two_sweep",
    "UniformPattern",
    "RangeLimitedPattern",
    "ZipfPattern",
    "OpMix",
    "RequestStream",
    "PopulationSample",
    "PopulationSpec",
    "RandomVar",
    "sample_population",
]
