"""Request traces: generation, JSONL (de)serialization, and replay.

Experiments become reproducible artifacts: generate a trace once, save
it, and replay it later — against the solver (as aggregate flows) or
against the discrete-event cluster (request by request).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Iterator, List, TextIO, Tuple

from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow
from repro.units import GB


@dataclass(frozen=True)
class TraceRecord:
    """One request in a trace."""

    path: str       # CommPath.value
    op: str         # Opcode.value
    payload: int
    address: int

    def __post_init__(self):
        CommPath(self.path)  # validate early
        Opcode(self.op)
        if self.payload < 0 or self.address < 0:
            raise ValueError("payload and address must be >= 0")

    @property
    def comm_path(self) -> CommPath:
        return CommPath(self.path)

    @property
    def opcode(self) -> Opcode:
        return Opcode(self.op)


class Trace:
    """An ordered list of requests with round-trip serialization."""

    def __init__(self, records: Iterable[TraceRecord] = ()):
        self.records: List[TraceRecord] = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    # -- serialization ----------------------------------------------------------

    def dump(self, handle: TextIO) -> None:
        """Write one JSON object per line."""
        for record in self.records:
            handle.write(json.dumps(asdict(record)) + "\n")

    @classmethod
    def load(cls, handle: TextIO) -> "Trace":
        records = []
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(TraceRecord(**json.loads(line)))
            except (json.JSONDecodeError, TypeError) as exc:
                raise ValueError(f"bad trace line {line_no}: {exc}") from exc
        return cls(records)

    # -- generation ---------------------------------------------------------------

    @classmethod
    def generate(cls, stream, path: CommPath, count: int) -> "Trace":
        """Materialize ``count`` requests of a
        :class:`~repro.workloads.mix.RequestStream` onto one path."""
        if count < 0:
            raise ValueError(f"negative count: {count}")
        records = []
        for opcode, payload, address in stream.take(count):
            records.append(TraceRecord(path=path.value, op=opcode.value,
                                       payload=payload, address=address))
        return cls(records)

    # -- analysis / replay -------------------------------------------------------------

    def summarize(self) -> Dict[Tuple[str, str, int], int]:
        """(path, op, payload) -> request count."""
        counts: Dict[Tuple[str, str, int], int] = {}
        for record in self.records:
            key = (record.path, record.op, record.payload)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def footprint(self) -> int:
        """Bytes of address space the trace touches (max extent)."""
        if not self.records:
            return 0
        return max(r.address + max(1, r.payload) for r in self.records)

    def as_flows(self, requesters: int = 11,
                 min_share: float = 0.01) -> List[Flow]:
        """Aggregate the trace into weighted solver flows.

        Each distinct (path, op, payload) class becomes one flow whose
        weight is its share of requests; classes below ``min_share`` are
        folded away.  The responder range is the trace's footprint.
        """
        total = len(self.records)
        if total == 0:
            raise ValueError("empty trace")
        range_bytes = max(float(self.footprint()),
                          float(max(r.payload for r in self.records) or 1))
        flows = []
        for (path, op, payload), count in sorted(self.summarize().items()):
            share = count / total
            if share < min_share:
                continue
            comm_path = CommPath(path)
            flows.append(Flow(
                path=comm_path,
                op=Opcode(op),
                payload=payload,
                requesters=requesters if not comm_path.intra_machine else 8,
                range_bytes=max(range_bytes, payload or 1),
                weight=share,
                label=f"{path} {op} {payload}B ({share:.0%})",
            ))
        if not flows:
            raise ValueError("min_share folded every class away")
        return flows
