"""Stochastic user populations: open-loop traffic from user counts.

Rack-scale scenarios (:mod:`repro.cluster`) describe traffic the way a
capacity planner does — *how many users* and *how often each one asks*
— instead of hand-writing hundreds of tenant specs.  A
:class:`PopulationSpec` is one cohort: ``tenants`` tenant streams, each
with an **active-user count** and a **requests/min/user rate** drawn
from configured random variables (:class:`RandomVar`, fixed / normal /
Poisson).  :func:`sample_population` expands cohorts into concrete
:class:`~repro.sched.tenant.TenantSpec` streams whose open-loop
interval is ``60e9 / (users × req_per_min)`` ns.

Sampling is **seeded and pure**: every draw comes from a
``random.Random`` keyed by a SHA-256 of ``(seed, cohort, index)`` —
never Python's salted string hashing, never a shared stateful RNG — so
the same ``(populations, seed, duration)`` triple expands to the same
tenants in every process.  That purity is what lets cluster runs stay
bit-identical across ``jobs={1,N}``.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.units import GB
from repro.workloads.mix import OpMix

_DISTS = ("fixed", "normal", "poisson")

#: One simulated minute, in the simulator's nanosecond clock.
_MINUTE_NS = 60e9


def _rng(seed: int, *key) -> random.Random:
    """A ``random.Random`` keyed by a pure hash of its identity.

    ``random.Random(str)`` would go through Python's per-process salted
    string hash; SHA-256 keeps cohort draws identical across worker
    processes (the same discipline as
    :func:`repro.faults.cluster._unit`).
    """
    data = "|".join(str(part) for part in (seed,) + key).encode()
    digest = hashlib.sha256(data).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _poisson(rng: random.Random, lam: float) -> int:
    """Poisson draw: Knuth's product method, normal approximation for
    large means (stdlib only — no numpy dependency)."""
    if lam <= 0:
        return 0
    if lam > 30.0:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    limit = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= limit:
            return k
        k += 1


@dataclass(frozen=True)
class RandomVar:
    """One configured random variable (``fixed``/``normal``/``poisson``).

    ``std`` applies to ``normal`` only; ``lo``/``hi`` clamp every draw
    (so a normal user count cannot go negative).
    """

    dist: str
    mean: float
    std: float = 0.0
    lo: Optional[float] = None
    hi: Optional[float] = None

    def __post_init__(self):
        if self.dist not in _DISTS:
            raise ValueError(f"unknown distribution {self.dist!r}; "
                             f"expected one of {_DISTS}")
        if self.mean < 0:
            raise ValueError(f"mean must be >= 0: {self.mean}")
        if self.std < 0:
            raise ValueError(f"std must be >= 0: {self.std}")
        if (self.lo is not None and self.hi is not None
                and self.lo > self.hi):
            raise ValueError(f"empty clamp range [{self.lo}, {self.hi}]")

    @classmethod
    def fixed(cls, value: float) -> "RandomVar":
        return cls(dist="fixed", mean=value)

    def sample(self, rng: random.Random) -> float:
        if self.dist == "fixed":
            value = self.mean
        elif self.dist == "normal":
            value = rng.gauss(self.mean, self.std)
        else:
            value = float(_poisson(rng, self.mean))
        if self.lo is not None:
            value = max(self.lo, value)
        if self.hi is not None:
            value = min(self.hi, value)
        return value

    def to_dict(self) -> dict:
        out = {"dist": self.dist, "mean": self.mean}
        if self.std:
            out["std"] = self.std
        if self.lo is not None:
            out["lo"] = self.lo
        if self.hi is not None:
            out["hi"] = self.hi
        return out

    @classmethod
    def from_dict(cls, raw) -> "RandomVar":
        if isinstance(raw, (int, float)):
            return cls.fixed(float(raw))
        return cls(dist=raw.get("dist", "fixed"),
                   mean=float(raw["mean"]),
                   std=float(raw.get("std", 0.0)),
                   lo=raw.get("lo"), hi=raw.get("hi"))


@dataclass(frozen=True)
class PopulationSpec:
    """One traffic cohort: N tenants of users × requests/min/user.

    Each of the ``tenants`` streams draws its own user count and
    per-user rate, so a cohort produces *heterogeneous* tenants — some
    over-, some under-provisioned relative to the mean — which is
    exactly what makes cluster placement interesting.
    """

    name: str
    tenants: int
    active_users: RandomVar
    req_per_min: RandomVar
    payload: int = 512
    read_fraction: float = 1.0
    bulk: bool = False
    slo_p99_ns: float = 50_000.0
    working_set_bytes: float = 1 * GB
    hot_range_bytes: Optional[float] = None
    workers: int = 4
    queue_limit: int = 32

    def __post_init__(self):
        if not self.name:
            raise ValueError("cohort needs a name")
        if self.tenants < 1:
            raise ValueError(f"cohort {self.name!r} needs >= 1 tenant: "
                             f"{self.tenants}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read fraction must be in [0, 1]: "
                             f"{self.read_fraction}")
        if self.slo_p99_ns <= 0:
            raise ValueError(f"SLO p99 must be positive: {self.slo_p99_ns}")

    def mix(self) -> OpMix:
        return OpMix(read=self.read_fraction,
                     write=1.0 - self.read_fraction, send=0.0)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "tenants": self.tenants,
            "active_users": self.active_users.to_dict(),
            "req_per_min": self.req_per_min.to_dict(),
            "payload": self.payload,
            "read_fraction": self.read_fraction,
            "bulk": self.bulk,
            "slo_p99_ns": self.slo_p99_ns,
            "working_set_bytes": self.working_set_bytes,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
        }
        if self.hot_range_bytes is not None:
            out["hot_range_bytes"] = self.hot_range_bytes
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "PopulationSpec":
        return cls(
            name=raw["name"],
            tenants=int(raw["tenants"]),
            active_users=RandomVar.from_dict(raw["active_users"]),
            req_per_min=RandomVar.from_dict(raw["req_per_min"]),
            payload=int(raw.get("payload", 512)),
            read_fraction=float(raw.get("read_fraction", 1.0)),
            bulk=bool(raw.get("bulk", False)),
            slo_p99_ns=float(raw.get("slo_p99_ns", 50_000.0)),
            working_set_bytes=float(raw.get("working_set_bytes", 1 * GB)),
            hot_range_bytes=raw.get("hot_range_bytes"),
            workers=int(raw.get("workers", 4)),
            queue_limit=int(raw.get("queue_limit", 32)),
        )


@dataclass(frozen=True)
class PopulationSample:
    """The expanded population: concrete tenants plus who they stand for."""

    tenants: Tuple[TenantSpec, ...]
    users: Dict[str, int] = field(default_factory=dict)

    @property
    def total_users(self) -> int:
        return sum(self.users.values())

    @property
    def offered_rps(self) -> float:
        """Aggregate open-loop request rate, requests per second."""
        return sum(1e9 / t.interval_ns for t in self.tenants)


def sample_population(populations: Sequence[PopulationSpec], seed: int,
                      duration_ns: float,
                      ingress_ns: float = 0.0) -> PopulationSample:
    """Expand cohorts into seeded, concrete tenant streams.

    Each tenant's open-loop interval is ``60e9 / (users × req/min)``;
    its request count spans ``duration_ns``.  ``ingress_ns`` is the
    round-trip load-balancer overhead folded into every non-bulk
    request's recorded latency (bulk tenants originate inside the
    machine and never cross the LB tier).
    """
    # Lazy: repro.sched.tenant imports OpMix back from this package, so
    # a module-level import here would close an import cycle.
    from repro.sched.tenant import SloSpec, TenantSpec

    if duration_ns <= 0:
        raise ValueError(f"duration must be positive: {duration_ns}")
    names = [p.name for p in populations]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate cohort names: {names}")
    tenants = []
    users: Dict[str, int] = {}
    for spec in populations:
        for i in range(spec.tenants):
            rng = _rng(seed, spec.name, i)
            n_users = max(1, int(round(spec.active_users.sample(rng))))
            req_per_min = max(1e-9, spec.req_per_min.sample(rng))
            interval_ns = max(1.0, _MINUTE_NS / (n_users * req_per_min))
            name = f"{spec.name}{i:03d}"
            tenants.append(TenantSpec(
                name=name,
                payload=spec.payload,
                interval_ns=interval_ns,
                requests=max(1, int(duration_ns / interval_ns)),
                mix=spec.mix(),
                slo=SloSpec(p99_ns=spec.slo_p99_ns),
                bulk=spec.bulk,
                hot_range_bytes=spec.hot_range_bytes,
                working_set_bytes=spec.working_set_bytes,
                workers=spec.workers,
                queue_limit=spec.queue_limit,
                seed=rng.randrange(2 ** 31),
                ingress_ns=0.0 if spec.bulk else ingress_ns,
            ))
            users[name] = n_users
    return PopulationSample(tenants=tuple(tenants), users=users)
