"""Memory access patterns for one-sided workloads.

The paper's default is uniform over a 10 GB region (§3); the Fig 7 skew
study narrows the range.  A Zipfian pattern is included for KV-style
popularity skew (its *effective* range feeds the same skew model).
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Optional

from repro.hw.memory.address import AddressRegion
from repro.units import GB


class UniformPattern:
    """Uniform aligned addresses over the whole region."""

    def __init__(self, region: AddressRegion, payload: int,
                 alignment: int = 64, rng: Optional[random.Random] = None):
        from repro.hw.memory.address import UniformAddresses

        self._sampler = UniformAddresses(region, payload, alignment,
                                         rng or random.Random(0))
        self.region = region
        self.payload = payload

    def next(self) -> int:
        return self._sampler.next()

    @property
    def effective_range(self) -> float:
        """Bytes of memory the pattern spreads over (drives skew models)."""
        return self.region.size


class RangeLimitedPattern(UniformPattern):
    """Uniform accesses confined to a sub-range (the Fig 7 x-axis)."""

    def __init__(self, region: AddressRegion, payload: int, range_bytes: int,
                 alignment: int = 64, rng: Optional[random.Random] = None):
        if range_bytes > region.size:
            raise ValueError(
                f"range {range_bytes} exceeds region {region.size}")
        super().__init__(region.sub_region(range_bytes), payload,
                         alignment, rng)


class ZipfPattern:
    """Zipfian slot popularity over a region of fixed-size slots."""

    def __init__(self, region: AddressRegion, payload: int, theta: float = 0.99,
                 slots: int = 1024, rng: Optional[random.Random] = None):
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1): {theta}")
        if slots < 1 or slots * payload > region.size:
            raise ValueError("slots do not fit the region")
        self.region = region
        self.payload = payload
        self.slots = slots
        self.rng = rng or random.Random(0)
        weights = [1.0 / math.pow(rank + 1, theta) for rank in range(slots)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)

    def next(self) -> int:
        slot = bisect.bisect_left(self._cdf, self.rng.random())
        return self.region.base + min(slot, self.slots - 1) * self.payload

    @property
    def effective_range(self) -> float:
        """The range covering ~90 % of accesses — what the DRAM sees."""
        rank = bisect.bisect_left(self._cdf, 0.9) + 1
        return rank * self.payload
