"""DRAM model: channel/bank geometry and range-dependent concurrency.

The key behaviour (§3.2, Fig 7): DRAM needs *many banks in flight* to
sustain its peak request rate.  When the accessed address range shrinks,
fewer banks are covered, bank conflicts serialize accesses, and the
sustainable request rate collapses toward the single-bank rate — about
1/tRC for writes, faster for reads thanks to row-buffer hits and the
read/write asymmetry of DRAM (Hassan et al., HPCA'17, cited by the
paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import mrps


@dataclass(frozen=True)
class DRAMConfig:
    """Geometry and rates of one memory subsystem's DRAM.

    * ``channels`` — independent memory channels (host: 8, SoC: 1).
    * ``banks_per_channel`` — DDR4 has 16 banks (4 groups x 4).
    * ``bank_stripe`` — consecutive bytes mapped to one bank before the
      interleaving moves to the next (page-sized striping).
    * ``peak_bandwidth`` — per-channel read bandwidth, bytes/ns.
    * ``write_bandwidth_factor`` — write bandwidth relative to read.
    * ``bank_read_rate`` / ``bank_write_rate`` — sustainable requests/ns
      against a *single* bank.  Writes pay the full row cycle (tRC
      ~44 ns); row-buffer-friendly reads are about twice as fast.
    """

    name: str
    channels: int
    banks_per_channel: int = 16
    bank_stripe: int = 4096
    peak_bandwidth: float = 25.6          # bytes/ns = GB/s (DDR4-3200)
    write_bandwidth_factor: float = 0.78
    bank_read_rate: float = mrps(50.0)    # calibrated: Fig 7 READ floor
    bank_write_rate: float = mrps(22.7)   # calibrated: Fig 7 WRITE floor (1/tRC)

    def __post_init__(self):
        if self.channels < 1 or self.banks_per_channel < 1:
            raise ValueError("channels and banks must be >= 1")
        if self.bank_stripe <= 0:
            raise ValueError(f"bank stripe must be positive: {self.bank_stripe}")
        if not 0 < self.write_bandwidth_factor <= 1:
            raise ValueError("write bandwidth factor must be in (0, 1]")

    @property
    def total_banks(self) -> int:
        return self.channels * self.banks_per_channel

    @property
    def read_bandwidth(self) -> float:
        """Aggregate read bandwidth across channels, bytes/ns."""
        return self.peak_bandwidth * self.channels

    @property
    def write_bandwidth(self) -> float:
        """Aggregate write bandwidth across channels, bytes/ns."""
        return self.read_bandwidth * self.write_bandwidth_factor


class DRAMModel:
    """Capacity queries against a :class:`DRAMConfig`."""

    def __init__(self, config: DRAMConfig):
        self.config = config

    def banks_engaged(self, range_bytes: float) -> int:
        """How many banks a uniformly accessed range of bytes covers."""
        if range_bytes <= 0:
            raise ValueError(f"range must be positive: {range_bytes}")
        covered = math.ceil(range_bytes / self.config.bank_stripe)
        return max(1, min(self.config.total_banks, covered))

    def request_capacity(self, op: str, payload: int, range_bytes: float) -> float:
        """Sustainable requests/ns for accesses of ``payload`` bytes
        uniformly spread over ``range_bytes``.

        Two ceilings apply: bank-level parallelism (requests) and channel
        bandwidth (bytes).  Zero-byte payloads only see the bank ceiling.
        """
        banks = self.banks_engaged(range_bytes)
        if op == "read":
            rate = banks * self.config.bank_read_rate
            bandwidth = self.read_bandwidth_for(range_bytes)
        elif op == "write":
            rate = banks * self.config.bank_write_rate
            bandwidth = self.write_bandwidth_for(range_bytes)
        else:
            raise ValueError(f"unknown DRAM op: {op!r}")
        if payload > 0:
            rate = min(rate, bandwidth / payload)
        return rate

    def read_bandwidth_for(self, range_bytes: float) -> float:
        """Read bandwidth limited by how many channels the range covers."""
        channels = self._channels_engaged(range_bytes)
        return self.config.peak_bandwidth * channels

    def write_bandwidth_for(self, range_bytes: float) -> float:
        """Write bandwidth limited by how many channels the range covers."""
        return (self.read_bandwidth_for(range_bytes)
                * self.config.write_bandwidth_factor)

    def _channels_engaged(self, range_bytes: float) -> int:
        # Stripes rotate across channels first (round-robin at bank_stripe
        # granularity), so a range covering B banks touches min(channels, B)
        # channels.
        banks = self.banks_engaged(range_bytes)
        return min(self.config.channels, banks)

    def access_latency(self, op: str) -> float:
        """Mean single-access latency (ns) for the DES latency model."""
        if op == "read":
            return 50.0  # row-buffer-hit-heavy read
        if op == "write":
            return 15.0  # posted into the write queue; row cycle is hidden
        raise ValueError(f"unknown DRAM op: {op!r}")
