"""Memory substrate: DRAM geometry, LLC with DDIO, combined subsystem.

Models the §3.2 skew anomaly: a host CPU with DDIO absorbs NIC accesses
in the LLC regardless of how narrow the address range is, while the SoC
(no DDIO) serves them from a single DRAM channel whose bank-level
parallelism collapses when the accessed range is small.
"""

from repro.hw.memory.address import AddressRegion, UniformAddresses
from repro.hw.memory.dram import DRAMConfig, DRAMModel
from repro.hw.memory.cache import LLCConfig
from repro.hw.memory.subsystem import MemorySubsystem
from repro.hw.memory.cachesim import CacheStats, SetAssociativeCache
from repro.hw.memory.dramsim import DramBankSim, DramTimingParams

__all__ = [
    "AddressRegion",
    "UniformAddresses",
    "DRAMConfig",
    "DRAMModel",
    "LLCConfig",
    "MemorySubsystem",
    "CacheStats",
    "SetAssociativeCache",
    "DramBankSim",
    "DramTimingParams",
]
