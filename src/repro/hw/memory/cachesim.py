"""A set-associative cache simulator with DDIO way restriction.

Models the LLC behaviour behind Advice #1 at the granularity the
analytic model abstracts away: DMA traffic may only allocate into a
subset of ways (Intel DDIO reserves 2 of the LLC's ways by default), so
an inbound-DMA working set larger than that slice thrashes, while CPU
traffic may use the whole cache.

Replacement is per-set LRU.  Used by the memory-timing validation bench
to show the Fig 7 "host line stays flat" behaviour emerging from the
cache itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dma_allocations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """An LRU set-associative cache with optional DDIO way limits.

    ``ddio_ways`` bounds which ways *DMA* allocations may occupy
    (0..ddio_ways-1); CPU allocations may use every way.  Lookups hit in
    any way regardless of who allocated the line.
    """

    def __init__(self, size: int, ways: int, line: int = 64,
                 ddio_ways: Optional[int] = None):
        if size <= 0 or ways <= 0 or line <= 0:
            raise ValueError("size, ways and line must be positive")
        if size % (ways * line):
            raise ValueError("size must be a multiple of ways * line")
        self.size = size
        self.ways = ways
        self.line = line
        self.sets = size // (ways * line)
        if self.sets < 1:
            raise ValueError("cache has no sets")
        self.ddio_ways = ways if ddio_ways is None else ddio_ways
        if not 1 <= self.ddio_ways <= ways:
            raise ValueError(f"ddio_ways must be in [1, {ways}]")
        # Per set: list of (tag, way_index) in LRU order (MRU last).
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.sets)]
        self._lru: List[List[int]] = [[] for _ in range(self.sets)]
        self._way_of: List[Dict[int, int]] = [dict() for _ in range(self.sets)]
        self.stats = CacheStats()

    def _locate(self, addr: int):
        line_addr = addr // self.line
        return line_addr % self.sets, line_addr // self.sets

    def access(self, addr: int, from_dma: bool = False) -> bool:
        """One read or write access; returns True on hit.

        Misses allocate; DMA misses may only displace lines in the DDIO
        ways (write-allocate, as DDIO does for inbound writes).
        """
        if addr < 0:
            raise ValueError(f"negative address: {addr}")
        set_index, tag = self._locate(addr)
        ways = self._way_of[set_index]
        lru = self._lru[set_index]
        if tag in ways:
            self.stats.hits += 1
            lru.remove(tag)
            lru.append(tag)
            return True
        self.stats.misses += 1
        self._allocate(set_index, tag, from_dma)
        return False

    def _allocate(self, set_index: int, tag: int, from_dma: bool) -> None:
        ways = self._way_of[set_index]
        lru = self._lru[set_index]
        limit = self.ddio_ways if from_dma else self.ways
        free_way = self._free_way(ways, limit)
        if free_way is None:
            # Evict the LRU line living in an allowed way.
            victim = next(t for t in lru if ways[t] < limit)
            free_way = ways.pop(victim)
            lru.remove(victim)
            self.stats.evictions += 1
        ways[tag] = free_way
        lru.append(tag)
        if from_dma:
            self.stats.dma_allocations += 1

    def _free_way(self, ways: Dict[int, int], limit: int) -> Optional[int]:
        used = set(ways.values())
        for way in range(limit):
            if way not in used:
                return way
        return None

    @property
    def ddio_capacity(self) -> int:
        """Bytes of cache reachable by DMA allocations."""
        return self.sets * self.ddio_ways * self.line
