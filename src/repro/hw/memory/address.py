"""Address regions and samplers for access-pattern workloads."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional
import random


@dataclass(frozen=True)
class AddressRegion:
    """A contiguous range of a memory address space."""

    base: int
    size: int

    def __post_init__(self):
        if self.base < 0:
            raise ValueError(f"negative base: {self.base}")
        if self.size <= 0:
            raise ValueError(f"region size must be positive: {self.size}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        return self.base <= addr and addr + nbytes <= self.end

    def sub_region(self, size: int, offset: int = 0) -> "AddressRegion":
        """A smaller region carved out at ``offset`` — used for range sweeps."""
        if offset + size > self.size:
            raise ValueError(
                f"sub-region [{offset}, {offset + size}) exceeds size {self.size}")
        return AddressRegion(self.base + offset, size)


class UniformAddresses:
    """Uniformly random aligned addresses within a region.

    This is the paper's default workload: "responder addresses are
    randomly selected from a 10 GB address space" (§3 setup).
    """

    def __init__(self, region: AddressRegion, payload: int,
                 alignment: int = 64, rng: Optional[random.Random] = None):
        if payload < 0:
            raise ValueError(f"negative payload: {payload}")
        if alignment <= 0:
            raise ValueError(f"alignment must be positive: {alignment}")
        if payload > region.size:
            raise ValueError(
                f"payload {payload} larger than region {region.size}")
        self.region = region
        self.payload = payload
        self.alignment = alignment
        self.rng = rng or random.Random(0)
        span = region.size - payload
        self._slots = span // alignment + 1

    def next(self) -> int:
        """The next target address (base-aligned, payload fits in region)."""
        slot = self.rng.randrange(self._slots)
        return self.region.base + slot * self.alignment
