"""The combined memory subsystem seen by a NIC's DMA engine.

Routes each DMA access to the LLC (when DDIO applies) or to DRAM, and
answers capacity/latency queries for the throughput solver and the DES
latency engine (Fig 6 of the paper: the two access paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.memory.cache import LLCConfig
from repro.hw.memory.dram import DRAMConfig, DRAMModel


@dataclass(frozen=True)
class MemorySubsystem:
    """One endpoint's memory hierarchy as a DMA target.

    ``ddio`` decides whether inbound DMA may hit the LLC at all; the
    SoC's Cortex-A72 has an LLC but no DDIO-equivalent wired to the NIC,
    so its ``llc`` is bypassed for DMA.
    """

    dram: DRAMConfig
    llc: Optional[LLCConfig] = None
    ddio: bool = False
    name: str = ""

    def __post_init__(self):
        if self.ddio and self.llc is None:
            raise ValueError("DDIO requires an LLC configuration")

    @property
    def model(self) -> DRAMModel:
        return DRAMModel(self.dram)

    def _served_by_llc(self, range_bytes: float) -> bool:
        return (self.ddio and self.llc is not None
                and range_bytes <= self.llc.ddio_capacity)

    def dma_request_capacity(self, op: str, payload: int,
                             range_bytes: float) -> float:
        """Sustainable DMA requests/ns for this access pattern.

        With DDIO and a range that fits the DDIO ways, the LLC absorbs
        the traffic; otherwise DRAM's range-dependent concurrency rules.
        """
        if self._served_by_llc(range_bytes):
            return self.llc.request_capacity(op, payload)
        return self.model.request_capacity(op, payload, range_bytes)

    def dma_bandwidth(self, op: str, range_bytes: float) -> float:
        """Byte bandwidth available to DMA for this pattern, bytes/ns."""
        if self._served_by_llc(range_bytes):
            return self.llc.bandwidth
        model = self.model
        if op == "read":
            return model.read_bandwidth_for(range_bytes)
        if op == "write":
            return model.write_bandwidth_for(range_bytes)
        raise ValueError(f"unknown op: {op!r}")

    def dma_access_latency(self, op: str, range_bytes: float) -> float:
        """Mean latency (ns) of one DMA access for the DES engine."""
        if self._served_by_llc(range_bytes):
            return self.llc.hit_latency
        return self.model.access_latency(op)

    def span_attrs(self, op: str, nbytes: int) -> dict:
        """Attribution attributes for a trace span touching this subsystem.

        Identifies which of Fig 6's two access paths (LLC via DDIO, or
        DRAM) served the access, so latency reports can split memory
        annotations by destination.
        """
        range_bytes = float(max(nbytes, 1))
        served = "llc" if self._served_by_llc(range_bytes) else "dram"
        return {
            "subsystem": self.name,
            "served_by": served,
            "access_ns": self.dma_access_latency(op, range_bytes),
        }
