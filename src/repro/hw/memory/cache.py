"""Last-level cache model with Data Direct I/O (DDIO).

DDIO (Intel) lets the NIC's DMA engine read and write the LLC directly
instead of DRAM.  Only a slice of the LLC (two ways by default on Intel
parts) is available to inbound DMA writes, but that slice easily covers
the narrow, skewed ranges that would otherwise thrash a single DRAM
bank.  The ARM SoC on Bluefield-2 lacks the feature (§3.2, Advice #1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import mrps, MB


@dataclass(frozen=True)
class LLCConfig:
    """LLC geometry and DMA-visible service rates.

    * ``size`` — total LLC bytes.
    * ``ddio_way_fraction`` — fraction of the LLC that inbound DMA may
      allocate into (Intel default: 2 of 11-20 ways; ~0.15).
    * ``dma_read_rate`` / ``dma_write_rate`` — requests/ns the cache can
      absorb from the DMA engine; far above anything the NIC can issue,
      so with DDIO the memory side never bottlenecks small requests.
    * ``bandwidth`` — bytes/ns from the cache to the DMA engine.
    """

    size: int = 18 * MB
    ddio_way_fraction: float = 0.15
    dma_read_rate: float = mrps(400.0)
    dma_write_rate: float = mrps(400.0)
    bandwidth: float = 80.0  # bytes/ns
    hit_latency: float = 20.0  # ns

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"LLC size must be positive: {self.size}")
        if not 0 < self.ddio_way_fraction <= 1:
            raise ValueError("DDIO way fraction must be in (0, 1]")

    @property
    def ddio_capacity(self) -> float:
        """Bytes of LLC available to inbound DMA allocations."""
        return self.size * self.ddio_way_fraction

    def request_capacity(self, op: str, payload: int) -> float:
        """Sustainable DMA requests/ns against the cache."""
        if op == "read":
            rate = self.dma_read_rate
        elif op == "write":
            rate = self.dma_write_rate
        else:
            raise ValueError(f"unknown LLC op: {op!r}")
        if payload > 0:
            rate = min(rate, self.bandwidth / payload)
        return rate
