"""Cycle-approximate DRAM bank timing (closed-page policy).

The mechanism behind the Fig 7 floors, simulated rather than assumed:
NIC DMA traffic is random, so controllers run a closed-page policy and
every access pays activate + column access + precharge on its bank —
the bank is busy for a full row cycle.  Throughput then equals
``busy_banks / t_cycle``: one bank sustains ~22.7 M writes/s (44 ns
write row cycle), and a range spanning more bank stripes engages more
banks in parallel.

This module lets the validation bench *measure* those floors from an
access stream instead of trusting the analytic capacity formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.hw.memory.dram import DRAMConfig


@dataclass(frozen=True)
class DramTimingParams:
    """Closed-page service occupancies, ns.

    ``read_cycle`` is shorter than ``write_cycle``: reads release the
    bank after the column burst while writes hold it through write
    recovery (tWR) before precharge — the read/write asymmetry the paper
    cites (Hassan et al.).
    """

    read_cycle: float = 20.0    # calibrated: Fig 7 READ floor 50 M/s
    write_cycle: float = 44.0   # calibrated: Fig 7 WRITE floor 22.7 M/s
    column_latency: float = 15.0  # data-ready time after service starts

    def __post_init__(self):
        if min(self.read_cycle, self.write_cycle, self.column_latency) <= 0:
            raise ValueError("timing parameters must be positive")


class DramBankSim:
    """Per-bank busy tracking for an access stream."""

    def __init__(self, config: DRAMConfig,
                 timing: DramTimingParams = DramTimingParams()):
        self.config = config
        self.timing = timing
        self._busy_until = [0.0] * config.total_banks
        self.accesses = 0
        self.total_wait = 0.0

    def bank_of(self, addr: int) -> int:
        """Address to bank: stripes rotate round-robin across banks."""
        if addr < 0:
            raise ValueError(f"negative address: {addr}")
        return (addr // self.config.bank_stripe) % self.config.total_banks

    def access(self, addr: int, is_write: bool, now: float) -> float:
        """Issue one access; returns its completion time.

        The access waits for its bank, holds it for the row cycle, and
        the data is available ``column_latency`` into the service.
        """
        if now < 0:
            raise ValueError(f"negative time: {now}")
        bank = self.bank_of(addr)
        busy = self._busy_until[bank]
        start = busy if busy > now else now
        cycle = (self.timing.write_cycle if is_write
                 else self.timing.read_cycle)
        self._busy_until[bank] = start + cycle
        self.accesses += 1
        self.total_wait += start - now
        return start + self.timing.column_latency

    def run_stream(self, addrs: Iterable[int], is_write: bool,
                   now: float = 0.0) -> None:
        """Issue a whole access stream at one instant.

        Equivalent to calling :meth:`access` per address, with the loop
        kept inside the simulator so per-access interpreter overhead
        (attribute chases, bounds re-checks) is paid once per stream —
        this is the validation bench's hot loop.
        """
        if now < 0:
            raise ValueError(f"negative time: {now}")
        stripe = self.config.bank_stripe
        nbanks = self.config.total_banks
        cycle = (self.timing.write_cycle if is_write
                 else self.timing.read_cycle)
        busy_until = self._busy_until
        count = 0
        wait = 0.0
        for addr in addrs:
            if addr < 0:
                raise ValueError(f"negative address: {addr}")
            bank = (addr // stripe) % nbanks
            busy = busy_until[bank]
            start = busy if busy > now else now
            busy_until[bank] = start + cycle
            count += 1
            wait += start - now
        self.accesses += count
        self.total_wait += wait

    def drain_time(self) -> float:
        """When every bank becomes idle."""
        return max(self._busy_until)

    def measured_rate(self) -> float:
        """Accesses per ns over the busy horizon (after a run)."""
        horizon = self.drain_time()
        return self.accesses / horizon if horizon > 0 else 0.0
