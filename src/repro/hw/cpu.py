"""CPU models for the three processor types on the testbed (Table 2).

What matters to the paper is not general-purpose IPC but three
network-facing capabilities:

* how fast cores *post* work requests to a NIC (WQE preparation plus the
  MMIO doorbell — §3.3, Fig 10a),
* how fast cores *serve* two-sided messages (the echo responder of the
  Fig 4 SEND/RECV rows), and
* how many cores there are (the SoC's eight A72 cores are the reason
  SEND/RECV "drops by up to 64 %" on path ②).

Per-core rates are calibration constants (marked ``calibrated:``) chosen
so the aggregate numbers land on the paper's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import mrps


@dataclass(frozen=True)
class CPUSpec:
    """One processor complex (all sockets of a machine, or the SoC)."""

    name: str
    sockets: int
    cores_per_socket: int
    ghz: float
    wqe_prep_ns: float        # building one WQE in memory
    mmio_visible_ns: float    # one observable doorbell write to the local NIC
    sustained_post_ns: float  # pipelined per-request posting cost, per core
    two_sided_per_core: float # UD echo msgs/ns per core (rx + tx + app)
    two_sided_latency_ns: float = 400.0  # unloaded service latency of one msg

    def __post_init__(self):
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("sockets and cores must be >= 1")
        if min(self.wqe_prep_ns, self.mmio_visible_ns,
               self.sustained_post_ns) <= 0:
            raise ValueError("per-op costs must be positive")
        if self.two_sided_per_core <= 0:
            raise ValueError("two-sided rate must be positive")
        if self.two_sided_latency_ns <= 0:
            raise ValueError("two-sided latency must be positive")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def posting_latency(self) -> float:
        """Unpipelined latency (ns) of posting one request (Fig 10a)."""
        return self.wqe_prep_ns + self.mmio_visible_ns

    def issue_capacity(self, threads: int = None) -> float:
        """Sustained one-sided posting rate (reqs/ns) with ``threads`` cores.

        Posting pipelines across the store buffer, so the sustained
        per-request cost is below the unpipelined posting latency.
        """
        threads = self._clamp_threads(threads)
        return threads / self.sustained_post_ns

    def echo_capacity(self, threads: int = None) -> float:
        """Two-sided echo service rate (msgs/ns) with ``threads`` cores."""
        threads = self._clamp_threads(threads)
        return threads * self.two_sided_per_core

    def _clamp_threads(self, threads: int = None) -> int:
        if threads is None:
            return self.total_cores
        if threads < 1:
            raise ValueError(f"thread count must be >= 1: {threads}")
        return min(threads, self.total_cores)


# Table 2 SRV host CPU: 2x Intel Xeon Gold 5317 (12 cores, 3.6 GHz).
HOST_XEON_GOLD_5317 = CPUSpec(
    name="xeon-gold-5317",
    sockets=2,
    cores_per_socket=12,
    ghz=3.6,
    wqe_prep_ns=80.0,          # calibrated
    mmio_visible_ns=350.0,     # calibrated: host -> NIC behind PCIe0+switch
    sustained_post_ns=468.0,   # calibrated: 24 threads -> 51.2 M reqs/s (S3 H2S)
    two_sided_per_core=mrps(3.625),  # calibrated: 24 cores -> 87 Mpps (S2.1)
    two_sided_latency_ns=300.0,      # calibrated
)

# Table 2 CLI client CPU: 2x Intel Xeon E5-2650 v4 (12 cores, 2.2 GHz).
CLIENT_XEON_E5_2650 = CPUSpec(
    name="xeon-e5-2650v4",
    sockets=2,
    cores_per_socket=12,
    ghz=2.2,
    wqe_prep_ns=120.0,         # calibrated
    mmio_visible_ns=250.0,     # calibrated: local NIC, one PCIe traversal
    sustained_post_ns=615.0,   # calibrated: 24 threads -> ~39 M reqs/s, so
                               # five client machines saturate 195 Mpps (S4)
    two_sided_per_core=mrps(3.0),
    two_sided_latency_ns=350.0,      # calibrated
)

# Bluefield-2 SoC: ARM Cortex-A72, 8 cores, 2.75 GHz (Table 1).
ARM_CORTEX_A72 = CPUSpec(
    name="arm-cortex-a72",
    sockets=1,
    cores_per_socket=8,
    ghz=2.75,
    wqe_prep_ns=200.0,         # calibrated: wimpy core builds WQEs slowly
    mmio_visible_ns=500.0,     # calibrated: uncached store cost on A72
    sustained_post_ns=276.0,   # calibrated: 8 cores -> 29 M reqs/s (S3 S2H)
    two_sided_per_core=mrps(3.9),  # calibrated: 8 cores -> ~31 M msgs/s,
                                   # the "up to 64 % drop" of S3.2
    two_sided_latency_ns=1000.0,   # calibrated: SNIC2 SEND latency +21-30 %
)
