"""The PCIe switch that bridges NIC cores, SoC and host (Fig 2c).

The switch adds a fixed one-way forwarding latency per hop (the paper
cites 150-200 ns).  Ports are named; routing is by destination port
name.  Bandwidth is carried by the attached :class:`PCIeLink` objects —
the switch fabric itself is modelled as non-blocking, which matches the
paper's observation that bottlenecks are always the links or the NIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from repro.sim.events import Event
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator
    from repro.hw.pcie.link import PCIeLink

# Midpoint of the 150-200 ns one-way overhead the paper attributes to
# the added switch + PCIe1 hop.
DEFAULT_HOP_LATENCY_NS = 175.0


@dataclass
class SwitchPort:
    """A named switch port, optionally backed by a physical link."""

    name: str
    link: Optional["PCIeLink"] = None
    tlps_in: Counter = field(default_factory=Counter)
    tlps_out: Counter = field(default_factory=Counter)


class PCIeSwitch:
    """A non-blocking PCIe switch with per-hop forwarding latency."""

    def __init__(self, sim: "Simulator", hop_latency: float = DEFAULT_HOP_LATENCY_NS,
                 name: str = "pcie-switch"):
        if hop_latency < 0:
            raise ValueError(f"negative hop latency: {hop_latency}")
        self.sim = sim
        self.hop_latency = hop_latency
        self.name = name
        self.ports: Dict[str, SwitchPort] = {}

    def add_port(self, name: str, link: Optional["PCIeLink"] = None) -> SwitchPort:
        """Register a port; ``link`` is the physical link behind it, if any."""
        if name in self.ports:
            raise ValueError(f"duplicate port name: {name}")
        port = SwitchPort(name=name, link=link)
        self.ports[name] = port
        return port

    def port(self, name: str) -> SwitchPort:
        try:
            return self.ports[name]
        except KeyError:
            raise KeyError(f"switch {self.name!r} has no port {name!r}") from None

    def forward(self, src: str, dst: str, payload: int = 0) -> Event:
        """Forward one TLP from ``src`` port to ``dst`` port.

        Fires after the hop latency.  Per-port TLP counters update
        immediately (they model ingress/egress counts).
        """
        src_port = self.port(src)
        dst_port = self.port(dst)
        src_port.tlps_in.add(1)
        dst_port.tlps_out.add(1)
        done = Event(self.sim)
        done.succeed(payload, delay=self.hop_latency)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.point(f"switch:{self.name}", "pcie", self.sim.now,
                         self.sim.now + self.hop_latency,
                         switch=self.name, src=src, dst=dst,
                         payload=payload)
        return done
