"""PCIe generation / link-width specs.

The paper quotes nominal signalling bandwidth ("PCIe 4.0 x16
(256 Gbps)"), so we follow the same convention: per-lane rates are the
post-encoding data rates (gen3 8 GT/s w/ 128b/130b ~ 8 Gbps usable,
gen4 16 Gbps, gen5 32 Gbps).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.units import gbps


class PCIeGen(Enum):
    """PCIe generation with per-lane usable Gbps."""

    GEN3 = 8.0
    GEN4 = 16.0
    GEN5 = 32.0

    @property
    def gbps_per_lane(self) -> float:
        return self.value


@dataclass(frozen=True)
class PCIeLinkSpec:
    """A physical PCIe link configuration.

    ``mps`` is the endpoint's advertised maximum payload size in bytes
    ("PCIe MTU" in the paper, Table 3); the effective value on a link is
    the minimum of both partners' (see
    :func:`repro.hw.pcie.tlp.negotiate_mps`).
    """

    gen: PCIeGen
    lanes: int
    mps: int = 512
    name: str = ""

    def __post_init__(self):
        if self.lanes not in (1, 2, 4, 8, 16, 32):
            raise ValueError(f"invalid lane count: {self.lanes}")
        if self.mps not in (128, 256, 512, 1024, 2048, 4096):
            raise ValueError(f"invalid MPS: {self.mps}")

    @property
    def raw_gbps(self) -> float:
        """Nominal bandwidth in Gbps, per direction."""
        return self.gen.gbps_per_lane * self.lanes

    @property
    def bandwidth(self) -> float:
        """Nominal bandwidth in bytes/ns, per direction."""
        return gbps(self.raw_gbps)

    def effective_bandwidth(self, tlp_payload: int) -> float:
        """Data bandwidth (bytes/ns) once TLP headers are paid.

        ``tlp_payload`` is the data bytes carried per TLP (usually the
        negotiated MPS).  A 128 B MPS only reaches ~84 % of nominal; a
        512 B MPS reaches ~96 % — the root of the SoC-path ceiling.
        """
        from repro.hw.pcie.tlp import TLP_HEADER_BYTES

        if tlp_payload <= 0:
            raise ValueError(f"TLP payload must be positive: {tlp_payload}")
        efficiency = tlp_payload / (tlp_payload + TLP_HEADER_BYTES)
        return self.bandwidth * efficiency


# Common testbed configurations (Table 2).
PCIE_GEN3 = PCIeLinkSpec(PCIeGen.GEN3, 16, name="pcie3-x16")
PCIE_GEN4 = PCIeLinkSpec(PCIeGen.GEN4, 16, name="pcie4-x16")
PCIE_GEN5 = PCIeLinkSpec(PCIeGen.GEN5, 16, name="pcie5-x16")
