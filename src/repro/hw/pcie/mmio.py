"""MMIO (memory-mapped IO) write cost model.

Posting a work request to a NIC is dominated by the MMIO doorbell write
(§3.3, Fig 10a).  MMIO writes are uncached, serializing stores whose
cost grows with the PCIe distance between the CPU issuing them and the
NIC's BAR — the SoC pays dearly when ringing a doorbell for host-side
communication because the store crosses the switch.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MMIOModel:
    """Per-write MMIO latencies (ns) from a CPU to a NIC's registers.

    ``base`` is the write-combining store + flush cost on the issuing
    core; ``per_hop`` is added for each PCIe switch/link traversal
    between the CPU and the NIC function.
    """

    base: float
    per_hop: float = 175.0

    def __post_init__(self):
        if self.base < 0 or self.per_hop < 0:
            raise ValueError("MMIO latencies must be >= 0")

    def write_latency(self, hops: int = 1) -> float:
        """Latency of one MMIO doorbell write across ``hops`` traversals.

        MMIO writes are posted, so the *blocking* cost at the CPU is the
        store-buffer drain; crossing more fabric raises back-pressure and
        effective issue cost, which we model linearly per hop.
        """
        if hops < 0:
            raise ValueError(f"negative hop count: {hops}")
        return self.base + self.per_hop * hops
