"""Transaction-layer packets (TLPs): segmentation and wire-cost math.

This module is pure arithmetic — it backs both the discrete-event DMA
engine and the closed-form Table-3 packet-count model
(:mod:`repro.core.packets`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Tuple

# Header + framing overhead per TLP on the wire.  A memory-request TLP
# carries ~12-16 B of TLP header plus DLLP/physical framing; 24 B is the
# commonly used aggregate figure (Neugebauer et al., SIGCOMM'18).
TLP_HEADER_BYTES = 24

# A read *request* TLP carries no payload: header only.
TLP_READ_REQUEST_BYTES = TLP_HEADER_BYTES


class TlpKind(Enum):
    """The three TLP kinds the model needs."""

    MEM_WRITE = "MemWr"       # posted: no completion
    MEM_READ = "MemRd"        # non-posted: answered by completions
    COMPLETION = "CplD"       # completion with data


@dataclass(frozen=True)
class Tlp:
    """One transaction-layer packet.

    ``payload`` is data bytes; :attr:`wire_bytes` adds header overhead.
    """

    kind: TlpKind
    payload: int
    tag: int = 0

    def __post_init__(self):
        if self.payload < 0:
            raise ValueError(f"negative TLP payload: {self.payload}")

    @property
    def wire_bytes(self) -> int:
        """Bytes this TLP occupies on the link."""
        return self.payload + TLP_HEADER_BYTES


def negotiate_mps(a_mps: int, b_mps: int) -> int:
    """Maximum payload size negotiated between two link partners.

    PCIe endpoints advertise a maximum payload size at enumeration and
    the smaller one wins — this is why the SoC side of Bluefield runs at
    128 B while the host side runs at 512 B (Table 3).
    """
    if a_mps <= 0 or b_mps <= 0:
        raise ValueError(f"MPS must be positive, got {a_mps}, {b_mps}")
    return min(a_mps, b_mps)


def segment_count(nbytes: int, mps: int) -> int:
    """Number of data TLPs needed for ``nbytes`` (``ceil(N / MTU)``).

    Zero-byte transfers produce zero data TLPs — the paper's 0 B
    microbenchmark (§4) relies on this: such requests never touch PCIe.
    """
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    if mps <= 0:
        raise ValueError(f"MPS must be positive, got {mps}")
    return math.ceil(nbytes / mps)


def segment_sizes(nbytes: int, mps: int) -> List[int]:
    """Per-TLP payload sizes for ``nbytes`` split at ``mps``."""
    full, rest = divmod(nbytes, mps)
    sizes = [mps] * full
    if rest:
        sizes.append(rest)
    return sizes


def wire_bytes(nbytes: int, mps: int) -> int:
    """Total wire bytes to move ``nbytes`` of data TLPs at ``mps``."""
    return nbytes + segment_count(nbytes, mps) * TLP_HEADER_BYTES


def write_wire_cost(nbytes: int, mps: int) -> Tuple[int, int]:
    """(tlp_count, wire_bytes) for a posted write of ``nbytes``.

    Writes are posted: data TLPs flow toward the target, nothing returns.
    A zero-byte write still costs one header-only TLP when issued (but
    NICs skip the DMA entirely for 0 B, which callers model themselves).
    """
    count = segment_count(nbytes, mps)
    return count, wire_bytes(nbytes, mps)


def read_wire_cost(nbytes: int, mps: int,
                   max_read_request: int = 4096) -> Tuple[int, int, int, int]:
    """Wire cost of a DMA read of ``nbytes``.

    Returns ``(request_tlps, request_bytes, completion_tlps,
    completion_bytes)``.  The reader issues one read-request TLP per
    ``max_read_request`` chunk; the target answers with completion TLPs
    segmented at the negotiated ``mps``.
    """
    if nbytes == 0:
        return 0, 0, 0, 0
    requests = segment_count(nbytes, max_read_request)
    completions = segment_count(nbytes, mps)
    return (
        requests,
        requests * TLP_READ_REQUEST_BYTES,
        completions,
        wire_bytes(nbytes, mps),
    )
