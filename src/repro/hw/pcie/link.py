"""A PCIe link instance inside a discrete-event simulation.

Wraps a full-duplex channel with TLP segmentation and per-direction
TLP/byte counters (the simulated equivalent of the Bluefield hardware
counters the paper reads).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.events import Event
from repro.sim.links import DuplexChannel
from repro.sim.monitor import Counter
from repro.hw.pcie.config import PCIeLinkSpec
from repro.hw.pcie.tlp import TLP_HEADER_BYTES, segment_sizes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class PCIeLink:
    """One physical PCIe link between two components.

    Direction convention: ``forward=True`` means *downstream-to-upstream*
    is up to the caller; the NIC wiring in :mod:`repro.nic.smartnic`
    documents which end is which.  Propagation latency is per traversal.
    """

    def __init__(self, sim: "Simulator", spec: PCIeLinkSpec,
                 latency: float = 0.0, name: str = ""):
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self.channel = DuplexChannel(sim, spec.bandwidth, latency, name=self.name)
        self.tlps_fwd = Counter()
        self.tlps_rev = Counter()
        self.data_bytes_fwd = Counter()
        self.data_bytes_rev = Counter()

    def send_tlp(self, payload: int, forward: bool = True) -> Event:
        """Transfer one TLP carrying ``payload`` data bytes."""
        counter = self.tlps_fwd if forward else self.tlps_rev
        data = self.data_bytes_fwd if forward else self.data_bytes_rev
        counter.add(1)
        data.add(payload)
        return self.channel.send(payload + TLP_HEADER_BYTES, forward=forward)

    def send_data(self, nbytes: int, mps: int, forward: bool = True) -> Event:
        """Transfer ``nbytes`` segmented into TLPs of at most ``mps``.

        Returns the delivery event of the *last* TLP.  A zero-byte
        transfer completes after one propagation delay with no TLPs.
        """
        if nbytes == 0:
            last = self.channel.send(0, forward=forward)
            tlps = 0
        else:
            last = None
            tlps = 0
            for size in segment_sizes(nbytes, mps):
                last = self.send_tlp(size, forward=forward)
                tlps += 1
        tracer = self.sim.tracer
        if tracer is not None:
            # One span per traversal, not per TLP: delivery time of the
            # last TLP is known at submission, so no event is added and
            # the span starts at submission (gap-free under contention;
            # queueing shows up as a longer span, not a hole).
            simplex = self.channel.fwd if forward else self.channel.rev
            tracer.point(f"pcie:{self.name}", "pcie", self.sim.now,
                         self.sim.now + simplex.last_delivery_delay(),
                         link=self.name, bytes=nbytes, tlps=tlps,
                         direction="fwd" if forward else "rev")
        return last

    # -- counters (hardware-counter style) ---------------------------------------

    @property
    def total_tlps(self) -> float:
        """Total TLPs carried in both directions."""
        return self.tlps_fwd.total + self.tlps_rev.total

    @property
    def total_data_bytes(self) -> float:
        """Total data payload bytes carried in both directions."""
        return self.data_bytes_fwd.total + self.data_bytes_rev.total
