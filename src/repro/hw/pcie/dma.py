"""The NIC's DMA engine as a discrete-event process.

Implements the execution flows of Fig 3:

* **dma_write** — posted.  Data TLPs flow toward the target; the engine
  completes once the last TLP is delivered, no return traffic.
* **dma_read** — non-posted.  A header-only read-request TLP travels to
  the target, completions with data travel back; the engine completes
  only when the last completion arrives — this is why READ "passes the
  PCIe twice" and carries the higher latency tax.

Routes are sequences of hops (links and switch traversals).  Transfers
are modelled store-and-forward per hop, which is exact for requests that
fit one TLP and a sub-1 % approximation for the small messages whose
latency the paper studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Union, TYPE_CHECKING

from repro.sim.links import LOST
from repro.sim.process import Process
from repro.hw.pcie.link import PCIeLink
from repro.hw.pcie.switch import PCIeSwitch
from repro.hw.pcie.tlp import TLP_READ_REQUEST_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class LinkHop:
    """Traverse a physical PCIe link in the given direction."""

    link: PCIeLink
    forward: bool = True

    def reversed(self) -> "LinkHop":
        return LinkHop(self.link, not self.forward)


@dataclass(frozen=True)
class SwitchHop:
    """Traverse a PCIe switch from one port to another."""

    switch: PCIeSwitch
    src: str
    dst: str

    def reversed(self) -> "SwitchHop":
        return SwitchHop(self.switch, self.dst, self.src)


Hop = Union[LinkHop, SwitchHop]


def reverse_route(route: Sequence[Hop]) -> List[Hop]:
    """The route completions take: same hops, opposite order/direction."""
    return [hop.reversed() for hop in reversed(route)]


class DmaEngine:
    """Issues DMA transactions over hop routes inside a simulation."""

    def __init__(self, sim: "Simulator", max_read_request: int = 4096):
        if max_read_request <= 0:
            raise ValueError(f"invalid max read request: {max_read_request}")
        self.sim = sim
        self.max_read_request = max_read_request

    # -- internals ---------------------------------------------------------------

    def _traverse(self, route: Sequence[Hop], nbytes: int, mps: int):
        """Move ``nbytes`` across every hop of ``route`` in order.

        A hop whose delivery is poisoned by a fault injector yields
        :data:`LOST`; the traversal then stops (the TLPs never reach
        later hops) and the process resolves to ``LOST``.
        """
        for hop in route:
            if isinstance(hop, LinkHop):
                got = yield hop.link.send_data(nbytes, mps, forward=hop.forward)
            else:
                got = yield hop.switch.forward(hop.src, hop.dst, payload=nbytes)
            if got is LOST:
                return LOST
        return nbytes

    def _traverse_header(self, route: Sequence[Hop], count: int = 1):
        """Move ``count`` header-only TLPs (read requests) across a route."""
        tracer = self.sim.tracer
        for hop in route:
            if isinstance(hop, LinkHop):
                last = None
                for _ in range(count):
                    last = hop.link.send_tlp(0, forward=hop.forward)
                if tracer is not None:
                    channel = hop.link.channel
                    simplex = channel.fwd if hop.forward else channel.rev
                    tracer.point(f"pcie:{hop.link.name}", "pcie",
                                 self.sim.now,
                                 self.sim.now + simplex.last_delivery_delay(),
                                 link=hop.link.name, tlps=count, bytes=0,
                                 tlp_kind="read_request")
                got = yield last
            else:
                got = yield hop.switch.forward(hop.src, hop.dst,
                                               payload=TLP_READ_REQUEST_BYTES)
            if got is LOST:
                return LOST
        return 0

    # -- public API ---------------------------------------------------------------

    def dma_write(self, route: Sequence[Hop], nbytes: int, mps: int) -> Process:
        """Posted write of ``nbytes`` along ``route``; fires at delivery."""
        if nbytes < 0:
            raise ValueError(f"negative DMA size: {nbytes}")
        gen = self._traverse(route, nbytes, mps)
        tracer = self.sim.tracer
        if tracer is not None:
            gen = tracer.wrap("dma_write", "dma", gen,
                              bytes=nbytes, mps=mps, hops=len(route))
        return self.sim.process(gen)

    def dma_read(self, route: Sequence[Hop], nbytes: int, mps: int) -> Process:
        """Non-posted read: request out along ``route``, data back.

        Fires when the final completion TLP has returned to the engine.
        """
        if nbytes < 0:
            raise ValueError(f"negative DMA size: {nbytes}")

        requests = max(1, math.ceil(nbytes / self.max_read_request))

        def transaction():
            out = yield self.sim.process(self._traverse_header(route, requests))
            if out is LOST:
                return LOST
            returned = yield self.sim.process(
                self._traverse(reverse_route(route), nbytes, mps))
            return returned

        gen = transaction()
        tracer = self.sim.tracer
        if tracer is not None:
            gen = tracer.wrap("dma_read", "dma", gen,
                              bytes=nbytes, mps=mps, hops=len(route),
                              read_requests=requests)
        return self.sim.process(gen)
