"""PCIe substrate: TLPs, links, switch, DMA, MMIO.

The key facts the paper's analysis rests on, all modelled here:

* A PCIe *memory write* is **posted** — no completion travels back
  (Fig 3: WRITE omits the completion).
* A PCIe *memory read* is **non-posted** — a small request TLP goes out
  and the data returns as completion TLPs, so a READ crosses the link
  twice.
* Payloads are segmented into TLPs no larger than the negotiated
  **Maximum Payload Size** (called "PCIe MTU" in the paper, Table 3):
  512 B toward the host, 128 B toward the wimpy SoC endpoint.
* Every switch hop adds 150-200 ns one way (§3.1).
"""

from repro.hw.pcie.tlp import (
    TLP_HEADER_BYTES,
    TLP_READ_REQUEST_BYTES,
    TlpKind,
    Tlp,
    negotiate_mps,
    segment_count,
    segment_sizes,
    wire_bytes,
    read_wire_cost,
    write_wire_cost,
)
from repro.hw.pcie.config import PCIeGen, PCIeLinkSpec, PCIE_GEN3, PCIE_GEN4, PCIE_GEN5
from repro.hw.pcie.link import PCIeLink
from repro.hw.pcie.switch import PCIeSwitch, SwitchPort
from repro.hw.pcie.mmio import MMIOModel
from repro.hw.pcie.dma import DmaEngine

__all__ = [
    "TLP_HEADER_BYTES",
    "TLP_READ_REQUEST_BYTES",
    "TlpKind",
    "Tlp",
    "negotiate_mps",
    "segment_count",
    "segment_sizes",
    "wire_bytes",
    "read_wire_cost",
    "write_wire_cost",
    "PCIeGen",
    "PCIeLinkSpec",
    "PCIE_GEN3",
    "PCIE_GEN4",
    "PCIE_GEN5",
    "PCIeLink",
    "PCIeSwitch",
    "SwitchPort",
    "MMIOModel",
    "DmaEngine",
]
