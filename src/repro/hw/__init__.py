"""Hardware substrate models: PCIe, memory subsystem, CPUs.

These are the first-principles components the paper's anomalies are
caused by; the NIC devices in :mod:`repro.nic` are wired out of them.
"""

from repro.hw.cpu import CPUSpec, HOST_XEON_GOLD_5317, CLIENT_XEON_E5_2650, ARM_CORTEX_A72

__all__ = [
    "CPUSpec",
    "HOST_XEON_GOLD_5317",
    "CLIENT_XEON_E5_2650",
    "ARM_CORTEX_A72",
]
