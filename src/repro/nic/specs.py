"""Device spec sheets and calibration constants.

Everything the models need to reproduce the paper's numbers lives here,
in one place.  Constants the paper states directly cite their section;
constants the paper only implies are marked ``calibrated:`` with the
measurement they were fitted to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.cpu import (
    ARM_CORTEX_A72,
    CLIENT_XEON_E5_2650,
    CPUSpec,
    HOST_XEON_GOLD_5317,
)
from repro.hw.memory import DRAMConfig, LLCConfig, MemorySubsystem
from repro.hw.pcie.config import PCIE_GEN3, PCIE_GEN4, PCIE_GEN5, PCIeLinkSpec
from repro.units import GB, MB, gbps, mpps


# ---------------------------------------------------------------------------
# Memory subsystems of the three endpoint kinds (Tables 1 and 2).
# ---------------------------------------------------------------------------

# SRV host: 8 channels of DDR4-2933 (~23.4 GB/s each), DDIO enabled.
HOST_MEMORY = MemorySubsystem(
    dram=DRAMConfig(name="host-ddr4-2933", channels=8, peak_bandwidth=23.4),
    llc=LLCConfig(),
    ddio=True,
    name="host",
)

# Bluefield-2 SoC: few DDR4 channels, no DDIO (S3.2 Advice #1).  Table 1
# says "1x 16 GB of DDR4-1600"; Fig 8 shows ~190 Gbps (23.8 GB/s) of READ
# service from SoC memory, which a 12.8 GB/s channel cannot supply, so
# the table figure must be the 1600 MHz clock (3200 MT/s).  We model two
# 3200 MT/s channels at ~85 % efficiency — calibrated so Fig 7's 512 B
# peaks (85 M READ / 77.9 M WRITE reqs/s) and Fig 5's path-2 duplex
# behaviour both land; documented substitution in DESIGN.md.
SOC_MEMORY = MemorySubsystem(
    dram=DRAMConfig(name="soc-ddr4-3200", channels=2, peak_bandwidth=21.76,
                    write_bandwidth_factor=0.92),
    llc=None,
    ddio=False,
    name="soc",
)

# CLI machines: 6 channels of DDR4-1600 (never a bottleneck as clients).
CLIENT_MEMORY = MemorySubsystem(
    dram=DRAMConfig(name="cli-ddr4-1600", channels=6, peak_bandwidth=12.8),
    llc=LLCConfig(),
    ddio=True,
    name="client",
)


# ---------------------------------------------------------------------------
# Doorbell batching cost model (S3.3 Advice #4, Fig 10b).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DoorbellCosts:
    """Per-requester posting costs with and without doorbell batching.

    Without batching every request pays ``per_request`` (a pipelined
    MMIO-dominated cost).  With batching, a batch of N costs
    ``batch_fixed + N * per_wqe``: one MMIO plus a NIC DMA fetch of the
    WQE list, whose per-entry cost depends on how fast the NIC can read
    the *requester's* memory — cheap for SoC memory, expensive for host
    memory (which is why DB can hurt at the host side).
    """

    per_request: float   # ns, non-batched pipelined posting cost per core
    batch_fixed: float   # ns, MMIO + DMA-fetch setup per batch
    per_wqe: float       # ns, marginal cost per batched WQE

    def __post_init__(self):
        if min(self.per_request, self.batch_fixed, self.per_wqe) <= 0:
            raise ValueError("doorbell costs must be positive")

    def batched_cost_per_request(self, batch: int) -> float:
        """Amortized per-request cost (ns) at the given batch size."""
        if batch < 1:
            raise ValueError(f"batch size must be >= 1: {batch}")
        return self.batch_fixed / batch + self.per_wqe

    def speedup(self, batch: int) -> float:
        """Throughput multiplier of DB at this batch size (<1 = regression)."""
        return self.per_request / self.batched_cost_per_request(batch)


# calibrated: fitted to Fig 10b — DB at the SoC side improves 2.7x at
# batch 16 up to 4.6x at batch 80 (NIC reads SoC memory quickly).
SOC_SIDE_DOORBELL = DoorbellCosts(
    per_request=276.0, batch_fixed=844.0, per_wqe=49.5)

# calibrated: fitted to Fig 10b — DB at the host side *loses* 9 %/7 %/6 %
# at batches 16/32/48 (NIC DMA-reads of host WQEs are slow, S3.1).
HOST_SIDE_DOORBELL = DoorbellCosts(
    per_request=468.0, batch_fixed=384.0, per_wqe=490.0)

# calibrated: client posting to its local NIC; DB brings the paper's
# quoted 2-30 % improvement for RNIC1/SNIC1.
CLIENT_SIDE_DOORBELL = DoorbellCosts(
    per_request=615.0, batch_fixed=900.0, per_wqe=500.0)


# ---------------------------------------------------------------------------
# NIC processing cores.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NICCoreSpec:
    """The RDMA processing pipeline shared by RNIC and SmartNIC.

    Verb-rate partitioning models the S4 observation that a few NIC
    cores are reserved per endpoint while most are shared: path 1 alone
    peaks at ``verb_rate_host_only``, path 2 alone at
    ``verb_rate_soc_only``, and using both concurrently unlocks
    ``verb_rate_concurrent`` (4-13 % above either).
    """

    name: str
    ports: int = 2
    port_gbps: float = 100.0
    # Verb-op capacities for small READs (0 B microbenchmark of S4):
    verb_rate_host_only: float = mpps(195.0)   # S2.1: ">195 Mpps"
    verb_rate_soc_only: float = mpps(157.0)    # calibrated: 352 - 195 = 157 (S4)
    verb_rate_concurrent: float = mpps(210.0)  # calibrated: +4-13 % over alone
    # WRITE processing shows almost no reserved-core effect ("for WRITE,
    # all results are almost the same", S4):
    verb_rate_write_host: float = mpps(195.0)
    verb_rate_write_soc: float = mpps(170.0)   # calibrated: S3.2 "portion of cores"
    verb_rate_write_concurrent: float = mpps(200.0)
    # PCIe DMA engine limits:
    pcie_pps: float = mpps(330.0)              # calibrated: Fig 9b ~320 Mpps
    dma_ops_host: float = mpps(300.0)          # calibrated: RNIC1 small-READ peak
    dma_ops_soc: float = mpps(350.0)           # calibrated: S3.2 "SNIC2 READ even
                                               # observably higher than RNIC1"
    hol_threshold: int = 9 * MB                # S3.2 Advice #2: collapse >9 MB
    hol_threshold_s2h: int = 2 * MB            # calibrated: "S2H collapses earlier"
    hol_pps: float = mpps(120.0)               # Fig 8b: <120 Mpps when collapsed
    # Outstanding-transaction windows (the stall mechanism of S3.1):
    read_slots: int = 130                      # calibrated: SNIC1 READ -19-26 %
    write_buffers: int = 101                   # calibrated: SNIC1 WRITE -15-22 %
    nic_base_ns: float = 200.0                 # per-request pipeline occupancy
    send_derate_snic: float = 0.85             # calibrated: SNIC1 SEND drop (S3.1)
    max_read_request: int = 4096
    # Network framing:
    network_mtu: int = 4096
    net_header_bytes: int = 36                 # LRH+BTH+CRCs per packet
    link_efficiency: float = 0.955             # calibrated: ~190/200 Gbps goodput
    duplex_derate: float = 0.958               # calibrated: READ+WRITE = 364 Gbps
    pipeline_ns: float = 250.0                 # per-request NIC pipeline latency

    def __post_init__(self):
        if self.ports < 1 or self.port_gbps <= 0:
            raise ValueError("invalid port configuration")
        if not 0 < self.link_efficiency <= 1 or not 0 < self.duplex_derate <= 1:
            raise ValueError("efficiencies must be in (0, 1]")

    @property
    def network_bandwidth(self) -> float:
        """Per-direction raw network bandwidth, bytes/ns."""
        return gbps(self.ports * self.port_gbps)

    def network_goodput(self, payload: int) -> float:
        """Achievable single-direction data bandwidth at this payload."""
        if payload <= 0:
            raise ValueError(f"payload must be positive: {payload}")
        per_packet = min(payload, self.network_mtu)
        efficiency = per_packet / (per_packet + self.net_header_bytes)
        return self.network_bandwidth * self.link_efficiency * efficiency


# ---------------------------------------------------------------------------
# Whole devices.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RNICSpec:
    """A plain RDMA NIC plugged straight into the host's PCIe slot."""

    name: str
    cores: NICCoreSpec
    host_link: PCIeLinkSpec = PCIE_GEN4
    host_mps: int = 512
    host_link_latency: float = 125.0  # ns, one traversal  # calibrated


@dataclass(frozen=True)
class SmartNICSpec:
    """An off-path SmartNIC: RNIC cores + SoC + internal PCIe switch."""

    name: str
    cores: NICCoreSpec
    soc_cpu: CPUSpec = ARM_CORTEX_A72
    soc_memory: MemorySubsystem = SOC_MEMORY
    soc_dram_bytes: int = 16 * GB
    pcie1: PCIeLinkSpec = PCIE_GEN4           # NIC cores <-> switch (Table 1)
    pcie0: PCIeLinkSpec = PCIE_GEN4           # switch <-> host
    host_mps: int = 512                        # Table 3
    soc_mps: int = 128                         # Table 3
    switch_hop_ns: float = 175.0               # S3.1: 150-200 ns one way
    link_latency_ns: float = 125.0             # per PCIe link traversal  # calibrated
    switch_derate: float = 0.95                # calibrated: S3 peak 204 Gbps
    soc_doorbell: DoorbellCosts = SOC_SIDE_DOORBELL
    host_doorbell: DoorbellCosts = HOST_SIDE_DOORBELL

    @property
    def pcie_bandwidth(self) -> float:
        """Per-direction nominal internal PCIe bandwidth, bytes/ns."""
        return min(self.pcie1.bandwidth, self.pcie0.bandwidth)


# The devices on the testbed (Table 2) and the Bluefield-3 sketch (S5).

CONNECTX6 = RNICSpec(
    name="connectx-6",
    cores=NICCoreSpec(name="cx6-cores", ports=2, port_gbps=100.0),
)

CONNECTX4 = RNICSpec(
    name="connectx-4",
    cores=NICCoreSpec(name="cx4-cores", ports=1, port_gbps=100.0,
                      verb_rate_host_only=mpps(150.0),
                      verb_rate_concurrent=mpps(150.0),
                      verb_rate_write_host=mpps(150.0),
                      verb_rate_write_concurrent=mpps(150.0)),
    host_link=PCIE_GEN3,
)

BLUEFIELD2 = SmartNICSpec(
    name="bluefield-2",
    cores=NICCoreSpec(name="cx6-cores", ports=2, port_gbps=100.0),
)

# S5: Bluefield-3 keeps the architecture, upgrades NIC (400 Gbps
# ConnectX-7), PCIe 5.0 and SoC cores; our models apply unchanged.
BLUEFIELD3 = SmartNICSpec(
    name="bluefield-3",
    cores=NICCoreSpec(name="cx7-cores", ports=2, port_gbps=200.0,
                      verb_rate_host_only=mpps(390.0),
                      verb_rate_soc_only=mpps(314.0),
                      verb_rate_concurrent=mpps(420.0),
                      verb_rate_write_host=mpps(390.0),
                      verb_rate_write_soc=mpps(340.0),
                      verb_rate_write_concurrent=mpps(400.0),
                      pcie_pps=mpps(660.0),
                      dma_ops_host=mpps(600.0),
                      dma_ops_soc=mpps(700.0)),
    pcie1=PCIE_GEN5,
    pcie0=PCIE_GEN5,
)

# The machines of Table 2, for convenience of the cluster builder.
HOST_CPU = HOST_XEON_GOLD_5317
CLIENT_CPU = CLIENT_XEON_E5_2650
