"""A catalog of SmartNIC spec sheets, plus spec loading from dicts.

§5 argues the study generalizes: every off-path SmartNIC extends an
RNIC with a SoC behind a PCIe switch, so the models apply with different
constants.  This module ships the known parts (Bluefield-2/3 and a
Broadcom Stingray PS225 sketch) and a loader so users can describe their
own device in JSON/TOML-shaped dictionaries and run the whole framework
against it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.hw.cpu import CPUSpec
from repro.hw.memory import DRAMConfig, MemorySubsystem
from repro.nic.specs import (
    BLUEFIELD2,
    BLUEFIELD3,
    NICCoreSpec,
    SmartNICSpec,
)
from repro.units import GB, mpps, mrps

# Broadcom Stingray PS225 (its product brief): a NetXtreme 100 Gbps RNIC
# plus 8x Cortex-A72 @ 3.0 GHz and one DDR4 channel.  Rates scale from
# Bluefield-2's calibration by the 100/200 Gbps network ratio.
_STINGRAY_CPU = CPUSpec(
    name="stingray-a72",
    sockets=1,
    cores_per_socket=8,
    ghz=3.0,
    wqe_prep_ns=185.0,
    mmio_visible_ns=480.0,
    sustained_post_ns=260.0,
    two_sided_per_core=mrps(4.1),
    two_sided_latency_ns=950.0,
)

_STINGRAY_MEMORY = MemorySubsystem(
    dram=DRAMConfig(name="stingray-ddr4", channels=1, peak_bandwidth=21.76,
                    write_bandwidth_factor=0.92),
    llc=None,
    ddio=False,
    name="stingray-soc",
)

STINGRAY_PS225 = SmartNICSpec(
    name="stingray-ps225",
    cores=NICCoreSpec(
        name="netxtreme-cores", ports=2, port_gbps=50.0,
        verb_rate_host_only=mpps(98.0),
        verb_rate_soc_only=mpps(78.0),
        verb_rate_concurrent=mpps(105.0),
        verb_rate_write_host=mpps(98.0),
        verb_rate_write_soc=mpps(85.0),
        verb_rate_write_concurrent=mpps(100.0),
        pcie_pps=mpps(165.0),
        dma_ops_host=mpps(150.0),
        dma_ops_soc=mpps(175.0),
        read_slots=130,
        write_buffers=101,
    ),
    soc_cpu=_STINGRAY_CPU,
    soc_memory=_STINGRAY_MEMORY,
    soc_dram_bytes=8 * GB,
)

CATALOG: Dict[str, SmartNICSpec] = {
    "bluefield-2": BLUEFIELD2,
    "bluefield-3": BLUEFIELD3,
    "stingray-ps225": STINGRAY_PS225,
}


def lookup(name: str) -> SmartNICSpec:
    """A catalog spec by name."""
    try:
        return CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown SmartNIC {name!r}; catalog has: {known}")


# Fields users may override when deriving a spec from a dict.  Scalar
# overrides only — structured members (CPU, memory) come from the base.
_CORE_FIELDS = {
    "ports", "port_gbps", "verb_rate_host_only", "verb_rate_soc_only",
    "verb_rate_concurrent", "verb_rate_write_host", "verb_rate_write_soc",
    "verb_rate_write_concurrent", "pcie_pps", "dma_ops_host", "dma_ops_soc",
    "hol_threshold", "hol_threshold_s2h", "hol_pps", "read_slots",
    "write_buffers", "nic_base_ns", "send_derate_snic", "max_read_request",
    "network_mtu", "net_header_bytes", "link_efficiency", "duplex_derate",
    "pipeline_ns",
}
_RATE_FIELDS = {
    "verb_rate_host_only", "verb_rate_soc_only", "verb_rate_concurrent",
    "verb_rate_write_host", "verb_rate_write_soc",
    "verb_rate_write_concurrent", "pcie_pps", "dma_ops_host",
    "dma_ops_soc", "hol_pps",
}
_SPEC_FIELDS = {"host_mps", "soc_mps", "switch_hop_ns", "link_latency_ns",
                "switch_derate", "soc_dram_bytes"}


def spec_from_dict(config: dict, base: str = "bluefield-2") -> SmartNICSpec:
    """Derive a SmartNIC spec from a plain dictionary.

    ``config`` holds a ``name``, optional top-level overrides
    (``host_mps``, ``soc_mps``, ``switch_hop_ns``, ...) and an optional
    ``cores`` sub-dict with core overrides.  Rate fields under ``cores``
    are given in Mpps.  Everything unspecified inherits from ``base``.
    """
    base_spec = lookup(base)
    unknown = (set(config) - _SPEC_FIELDS - {"name", "cores", "base"})
    if unknown:
        raise ValueError(f"unknown spec fields: {sorted(unknown)}")
    core_over = dict(config.get("cores", {}))
    unknown_cores = set(core_over) - _CORE_FIELDS
    if unknown_cores:
        raise ValueError(f"unknown core fields: {sorted(unknown_cores)}")
    for key in list(core_over):
        if key in _RATE_FIELDS:
            core_over[key] = mpps(float(core_over[key]))
    cores = replace(base_spec.cores, **core_over) if core_over else base_spec.cores
    spec_over = {key: config[key] for key in _SPEC_FIELDS if key in config}
    return replace(base_spec, cores=cores,
                   name=config.get("name", base_spec.name + "-custom"),
                   **spec_over)
