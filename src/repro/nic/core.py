"""The NIC processing cores: verb pipeline, partitioning, HOL blocking.

Two capacity models live here:

* **Verb-op capacity** — how many RDMA work requests per second the NIC
  cores retire.  §4's 0 B microbenchmark shows the pool is mostly shared
  between the host and SoC endpoints with small reserved slices, so
  using both paths concurrently buys 4–13 % (READ) and nothing (WRITE).
* **PCIe DMA pps capacity** — how many TLPs per second the DMA engine
  sustains.  Requests larger than the head-of-line threshold that
  involve a *non-posted* (read) DMA leg collapse this capacity to
  ``hol_pps`` (§3.2 Advice #2, §3.3 Advice #3): the engine stalls
  waiting for storms of small completions.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import FrozenSet, Iterable

from repro.nic.specs import NICCoreSpec


class Endpoint(Enum):
    """DMA targets reachable behind the NIC cores."""

    HOST = "host"
    SOC = "soc"


class NICCores:
    """Capacity queries against one NIC's processing cores."""

    def __init__(self, spec: NICCoreSpec):
        self.spec = spec

    # -- verb-op capacity -------------------------------------------------------

    def verb_capacity(self, endpoints: Iterable[Endpoint], op: str) -> float:
        """Sustainable verb ops/ns for small requests toward ``endpoints``.

        ``op`` is ``"read"``, ``"write"`` or ``"send"``.  Only READ
        processing exhibits the reserved-core partitioning (§4).
        """
        targets: FrozenSet[Endpoint] = frozenset(endpoints)
        if not targets:
            raise ValueError("need at least one endpoint")
        if op not in ("read", "write", "send"):
            raise ValueError(f"unknown op: {op!r}")
        if op == "read":
            rates = (self.spec.verb_rate_host_only,
                     self.spec.verb_rate_soc_only,
                     self.spec.verb_rate_concurrent)
        else:
            rates = (self.spec.verb_rate_write_host,
                     self.spec.verb_rate_write_soc,
                     self.spec.verb_rate_write_concurrent)
        if targets == {Endpoint.HOST}:
            return rates[0]
        if targets == {Endpoint.SOC}:
            return rates[1]
        return rates[2]

    def verb_ops_per_request(self, payload: int) -> int:
        """Network packets (and hence verb pipeline slots) per request."""
        if payload < 0:
            raise ValueError(f"negative payload: {payload}")
        return max(1, math.ceil(payload / self.spec.network_mtu))

    # -- DMA engine capacity -------------------------------------------------------

    def dma_pps_capacity(self, payload: int, nonposted_leg: bool,
                         s2h: bool = False) -> float:
        """TLPs/ns the DMA engine sustains for requests of ``payload``.

        Head-of-line collapse applies when the request exceeds the
        threshold *and* the flow contains a non-posted DMA read leg.
        S2H flows hit PCIe1 first and collapse at a smaller threshold
        (§3.3: "S2H collapses earlier than H2S").
        """
        if payload < 0:
            raise ValueError(f"negative payload: {payload}")
        threshold = (self.spec.hol_threshold_s2h if s2h
                     else self.spec.hol_threshold)
        if nonposted_leg and payload > threshold:
            return self.spec.hol_pps
        return self.spec.pcie_pps

    def hol_collapsed(self, payload: int, nonposted_leg: bool,
                      s2h: bool = False) -> bool:
        """True when this request shape triggers head-of-line blocking."""
        return (self.dma_pps_capacity(payload, nonposted_leg, s2h)
                < self.spec.pcie_pps)
