"""A plain RDMA NIC (ConnectX-style), Fig 2(a)."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.hw.memory import MemorySubsystem
from repro.hw.pcie.dma import DmaEngine, LinkHop
from repro.hw.pcie.link import PCIeLink
from repro.nic.core import NICCores
from repro.nic.specs import RNICSpec, HOST_MEMORY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class RNIC:
    """An RDMA NIC plugged directly into its host.

    The DMA path to host memory crosses exactly one PCIe link — the
    baseline against which the SmartNIC's "performance tax" (§3.1) is
    measured.
    """

    def __init__(self, spec: RNICSpec, host_memory: MemorySubsystem = HOST_MEMORY):
        self.spec = spec
        self.cores = NICCores(spec.cores)
        self.host_memory = host_memory
        # DES members, populated by instantiate():
        self.sim: Optional["Simulator"] = None
        self.host_link: Optional[PCIeLink] = None
        self.dma: Optional[DmaEngine] = None

    @property
    def host_mps(self) -> int:
        """Negotiated TLP payload size toward the host."""
        return min(self.spec.host_mps, self.spec.host_link.mps)

    def pcie_crossings_to_host(self) -> int:
        """Physical link traversals between NIC cores and host memory."""
        return 1

    # -- DES wiring ------------------------------------------------------------------

    def instantiate(self, sim: "Simulator") -> "RNIC":
        """Build the simulated PCIe fabric for this NIC."""
        self.sim = sim
        self.host_link = PCIeLink(sim, self.spec.host_link,
                                  latency=self.spec.host_link_latency,
                                  name=f"{self.spec.name}.pcie0")
        self.dma = DmaEngine(sim, self.spec.cores.max_read_request)
        return self

    def route_to_host(self):
        """Hop route from the NIC cores to host memory."""
        if self.host_link is None:
            raise RuntimeError("instantiate(sim) must be called first")
        return [LinkHop(self.host_link, forward=True)]
