"""The SmartNIC's on-board SoC: ARM cores plus private DRAM."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.cpu import CPUSpec
from repro.hw.memory import MemorySubsystem
from repro.nic.specs import DoorbellCosts


@dataclass(frozen=True)
class SoC:
    """The programmable complex of an off-path SmartNIC.

    From the NIC cores' perspective this is "a second full-fledged host
    with an exclusive network interface" (§2.2) — it runs Linux, posts
    verbs, and owns a single-channel DRAM without DDIO.
    """

    cpu: CPUSpec
    memory: MemorySubsystem
    dram_bytes: int
    doorbell: DoorbellCosts

    def __post_init__(self):
        if self.dram_bytes <= 0:
            raise ValueError(f"SoC DRAM size must be positive: {self.dram_bytes}")

    def issue_capacity(self, threads: int = None) -> float:
        """Sustained verb posting rate (reqs/ns) from SoC cores."""
        return self.cpu.issue_capacity(threads)

    def echo_capacity(self, threads: int = None) -> float:
        """Two-sided message service rate (msgs/ns) on SoC cores."""
        return self.cpu.echo_capacity(threads)
