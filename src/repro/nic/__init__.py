"""NIC devices: RNIC (ConnectX-style) and off-path SmartNIC (Bluefield-style).

A :class:`~repro.nic.smartnic.SmartNIC` wires the substrate together the
way Fig 2(c) shows: NIC cores behind PCIe1, a PCIe switch, the host
behind PCIe0, and the SoC hanging directly off the switch.
"""

from repro.nic.specs import (
    NICCoreSpec,
    RNICSpec,
    SmartNICSpec,
    DoorbellCosts,
    CONNECTX6,
    CONNECTX4,
    BLUEFIELD2,
    BLUEFIELD3,
    HOST_MEMORY,
    SOC_MEMORY,
    CLIENT_MEMORY,
)
from repro.nic.core import NICCores, Endpoint
from repro.nic.soc import SoC
from repro.nic.rnic import RNIC
from repro.nic.smartnic import SmartNIC

__all__ = [
    "NICCoreSpec",
    "RNICSpec",
    "SmartNICSpec",
    "DoorbellCosts",
    "CONNECTX6",
    "CONNECTX4",
    "BLUEFIELD2",
    "BLUEFIELD3",
    "HOST_MEMORY",
    "SOC_MEMORY",
    "CLIENT_MEMORY",
    "NICCores",
    "Endpoint",
    "SoC",
    "RNIC",
    "SmartNIC",
]
