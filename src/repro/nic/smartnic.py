"""The off-path SmartNIC device, Fig 2(c).

Wiring (matching Bluefield-2, §2.3):

* NIC cores (a full ConnectX-6) sit behind **PCIe1**.
* The host hangs behind **PCIe0**.
* The SoC attaches *directly to the switch* ("not via PCIe", §2.3); its
  traversal costs a switch hop but no extra serialized link.

The negotiated TLP payload size ("PCIe MTU") is a property of the final
endpoint: 512 B when DMA targets host memory, 128 B when it targets SoC
memory (Table 3) — regardless of which links the TLPs cross.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.hw.memory import MemorySubsystem
from repro.hw.pcie.dma import DmaEngine, Hop, LinkHop, SwitchHop
from repro.hw.pcie.link import PCIeLink
from repro.hw.pcie.switch import PCIeSwitch
from repro.nic.core import Endpoint, NICCores
from repro.nic.soc import SoC
from repro.nic.specs import SmartNICSpec, HOST_MEMORY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class SmartNIC:
    """An off-path SmartNIC with its internal fabric."""

    def __init__(self, spec: SmartNICSpec,
                 host_memory: MemorySubsystem = HOST_MEMORY):
        self.spec = spec
        self.cores = NICCores(spec.cores)
        self.host_memory = host_memory
        self.soc = SoC(cpu=spec.soc_cpu, memory=spec.soc_memory,
                       dram_bytes=spec.soc_dram_bytes,
                       doorbell=spec.soc_doorbell)
        # DES members, populated by instantiate():
        self.sim: Optional["Simulator"] = None
        self.pcie1: Optional[PCIeLink] = None
        self.pcie0: Optional[PCIeLink] = None
        self.switch: Optional[PCIeSwitch] = None
        self.dma: Optional[DmaEngine] = None

    # -- analytic properties -------------------------------------------------------

    def mps_for(self, endpoint: Endpoint) -> int:
        """Negotiated TLP payload size when DMA targets ``endpoint``."""
        if endpoint is Endpoint.HOST:
            return min(self.spec.host_mps, self.spec.pcie0.mps)
        return self.spec.soc_mps

    def memory_of(self, endpoint: Endpoint) -> MemorySubsystem:
        """The memory subsystem behind ``endpoint``."""
        if endpoint is Endpoint.HOST:
            return self.host_memory
        return self.soc.memory

    def pcie_crossings_to(self, endpoint: Endpoint) -> int:
        """One-way PCIe link traversals from NIC cores to ``endpoint``.

        Host: PCIe1 + PCIe0 = 2.  SoC: PCIe1 only = 1 (the SoC hangs
        off the switch directly), which is why path 2 READ latency is
        "up to 14 %" below path 1 (§3.2).
        """
        return 2 if endpoint is Endpoint.HOST else 1

    def crossing_latency(self, endpoint: Endpoint) -> float:
        """One-way fabric latency (ns) from NIC cores to ``endpoint``."""
        links = self.pcie_crossings_to(endpoint)
        return links * self.spec.link_latency_ns + self.spec.switch_hop_ns

    def doorbell_latency(self, endpoint: Endpoint) -> float:
        """MMIO doorbell cost (ns) from ``endpoint`` to the NIC cores.

        Doorbells are posted writes: only half a fabric traversal is
        latency-visible to the issuing CPU (the other half overlaps with
        the NIC fetching the WQE).  This is the span the tracer labels
        ``doorbell_mmio`` on path ③.
        """
        return 0.5 * self.crossing_latency(endpoint)

    # -- DES wiring ---------------------------------------------------------------------

    def instantiate(self, sim: "Simulator") -> "SmartNIC":
        """Build the simulated internal fabric (links + switch)."""
        self.sim = sim
        self.pcie1 = PCIeLink(sim, self.spec.pcie1,
                              latency=self.spec.link_latency_ns,
                              name=f"{self.spec.name}.pcie1")
        self.pcie0 = PCIeLink(sim, self.spec.pcie0,
                              latency=self.spec.link_latency_ns,
                              name=f"{self.spec.name}.pcie0")
        self.switch = PCIeSwitch(sim, hop_latency=self.spec.switch_hop_ns,
                                 name=f"{self.spec.name}.switch")
        for port in ("nic", "host", "soc"):
            self.switch.add_port(port)
        self.dma = DmaEngine(sim, self.spec.cores.max_read_request)
        return self

    def _require_fabric(self) -> None:
        if self.switch is None:
            raise RuntimeError("instantiate(sim) must be called first")

    def route_to(self, endpoint: Endpoint) -> List[Hop]:
        """Hop route from the NIC cores to ``endpoint``'s memory.

        ``forward=True`` on PCIe1 means NIC -> switch; on PCIe0 it means
        switch -> host.
        """
        self._require_fabric()
        if endpoint is Endpoint.HOST:
            return [
                LinkHop(self.pcie1, forward=True),
                SwitchHop(self.switch, "nic", "host"),
                LinkHop(self.pcie0, forward=True),
            ]
        return [
            LinkHop(self.pcie1, forward=True),
            SwitchHop(self.switch, "nic", "soc"),
        ]

    def route_host_to_soc(self) -> List[Hop]:
        """The full path-3 data route: host memory -> NIC -> SoC memory.

        Crosses PCIe1 twice (in and out, §3.3) — the hidden bottleneck.
        """
        self._require_fabric()
        return [
            LinkHop(self.pcie0, forward=False),
            SwitchHop(self.switch, "host", "nic"),
            LinkHop(self.pcie1, forward=False),
            LinkHop(self.pcie1, forward=True),
            SwitchHop(self.switch, "nic", "soc"),
        ]
