"""Tenant descriptions: what each stream wants, and what it was promised.

A tenant is one open-loop request stream — a payload/op mix arriving at
a fixed rate — plus the service-level objective it was sold.  The specs
are frozen; everything mutable (queues, leases, windows) lives in the
runtime and the SLO tracker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.advisor import WorkloadProfile
from repro.core.paths import CommPath
from repro.units import GB, to_gbps
from repro.workloads import OpMix


@dataclass(frozen=True)
class SloSpec:
    """A tenant's service-level objective.

    * ``p99_ns`` — tail-latency target; the scheduler treats a window
      whose measured p99 exceeds it as a violation.
    * ``deadline_ns`` — per-request usefulness bound for *SLO-goodput*
      (bytes of requests completed within deadline).  Defaults to the
      p99 target.
    """

    p99_ns: float = 50_000.0
    deadline_ns: Optional[float] = None

    def __post_init__(self):
        if self.p99_ns <= 0:
            raise ValueError(f"p99 target must be positive: {self.p99_ns}")
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ValueError(f"deadline must be positive: {self.deadline_ns}")

    @property
    def deadline(self) -> float:
        return self.deadline_ns if self.deadline_ns is not None else self.p99_ns


@dataclass(frozen=True)
class TenantSpec:
    """One open-loop tenant stream.

    * ``payload``/``mix`` — request shape (reuses
      :class:`~repro.workloads.OpMix`).
    * ``interval_ns`` — open-loop arrival period (one request per
      interval, regardless of completions).
    * ``requests`` — total arrivals before the stream ends.
    * ``bulk`` — a path-③ tenant: its requests move data host→SoC
      inside the server instead of arriving from a client machine.
    * ``hot_range_bytes``/``working_set_bytes`` — skew description,
      passed through to the advisor.
    * ``workers`` — maximum in-flight requests (one QP per worker).
    * ``queue_limit`` — bounded admission queue; arrivals beyond it are
      rejected (the backpressure signal).
    * ``ingress_ns`` — fixed network overhead *outside* the machine
      (the load-balancer round trip in a rack scenario), folded into
      every recorded latency so SLO accounting sees what the user saw.
    """

    name: str
    payload: int
    interval_ns: float
    requests: int
    mix: OpMix = OpMix(read=1.0, write=0.0, send=0.0)
    slo: SloSpec = SloSpec()
    bulk: bool = False
    hot_range_bytes: Optional[float] = None
    working_set_bytes: float = 1 * GB
    workers: int = 4
    queue_limit: int = 32
    seed: int = 0
    ingress_ns: float = 0.0

    def __post_init__(self):
        if self.payload < 0:
            raise ValueError(f"negative payload: {self.payload}")
        if self.interval_ns <= 0:
            raise ValueError(f"arrival interval must be positive: "
                             f"{self.interval_ns}")
        if self.requests < 1:
            raise ValueError(f"need at least one request: {self.requests}")
        if self.workers < 1:
            raise ValueError(f"need at least one worker: {self.workers}")
        if self.queue_limit < 1:
            raise ValueError(f"queue limit must be >= 1: {self.queue_limit}")
        if self.bulk and self.mix.send > 0:
            raise ValueError("bulk (path-3) tenants are one-sided")
        if self.ingress_ns < 0:
            raise ValueError(f"negative ingress: {self.ingress_ns}")

    @property
    def offered_gbps(self) -> float:
        """Offered load of the open-loop stream."""
        return to_gbps(self.payload / self.interval_ns)

    def profile(self) -> WorkloadProfile:
        """The advisor-facing description of this tenant."""
        one_sided = self.mix.read + self.mix.write
        read_fraction = self.mix.read / one_sided if one_sided > 0 else 0.5
        return WorkloadProfile(
            payload=self.payload,
            read_fraction=read_fraction,
            two_sided_fraction=self.mix.send,
            hot_range_bytes=self.hot_range_bytes,
            working_set_bytes=self.working_set_bytes,
            host_soc_transfer=self.bulk,
        )


@dataclass(frozen=True)
class CompletionRecord:
    """One finished (or abandoned) request, as the runtime saw it.

    ``degraded`` marks requests served by the host-local relay while
    the SoC was down; ``ok=False`` marks requests abandoned after the
    retry budget (these count as *lost*).
    """

    tenant: str
    seq: int
    op: str
    path: CommPath
    start_ns: float
    end_ns: float
    ok: bool
    attempts: int = 1
    degraded: bool = False

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns
