"""The serving runtime: tenant streams executed over live QPs.

:class:`ServingRuntime` is the data plane under the scheduler.  Each
tenant gets:

* an **open-loop arrival process** (one request per ``interval_ns``,
  regardless of completions — the serving-system regime where queueing
  delay is real);
* a **bounded admission queue** — arrivals that find it full are
  rejected immediately (backpressure instead of unbounded buildup);
* ``workers`` **worker processes**, each owning one RC QP pair to the
  tenant's current responder, draining the queue through actual
  simulated verbs (so latency includes NIC pipelines, PCIe, DMA and
  congestion from every other tenant);
* an optional **token bucket** capping its byte rate (the scheduler
  sets this to the ``P − N`` budget for path-③ tenants).

The control-plane surface is :class:`PathLease`: the scheduler mutates
a tenant's lease via :meth:`ServingRuntime.rebind`, which bumps the
lease generation and connects fresh QP pairs to the new responder
(see :meth:`repro.rdma.verbs.RdmaContext.rebind_rc`).  In-flight
requests that fail on the old path retry on the new one — migration
is lossless as long as the retry budget holds out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.apps.logship import TokenBucket
from repro.core.paths import CommPath, Opcode
from repro.hw.memory.address import AddressRegion
from repro.net.cluster import SimCluster
from repro.rdma.qp import QPState, QueuePair
from repro.rdma.verbs import RdmaContext
from repro.sched.policy import Placement
from repro.sched.slo import SloTracker
from repro.sched.tenant import CompletionRecord, TenantSpec
from repro.units import gbps, gib_per_s, to_mpps
from repro.sim import Store
from repro.sim.links import LOST
from repro.workloads import RangeLimitedPattern, RequestStream, UniformPattern

#: Per-attempt transport tuning for runtime QPs.  Default verbs retry
#: for ~0.5 ms before wedging; a serving runtime wants to fail fast and
#: let the (possibly migrated) lease drive the retry instead.
_RETRY_CNT = 2
_TIMEOUT_NS = 4_000.0

#: Host-local relay throughput while degraded (SoC down): a memcpy
#: through host DRAM instead of a DMA hop to SoC memory.
_RELAY_GIBPS = 16.0


@dataclass
class PathLease:
    """A tenant's current binding, owned by the scheduler.

    ``generation`` increments on every re-bind; workers compare their
    QP's generation against the lease to notice migrations mid-retry.
    ``degraded`` marks the host-local relay mode (path-③ tenant with
    the SoC down) — requests are served by host CPU + DRAM instead of
    traversing QPs.
    """

    tenant: str
    path: CommPath
    responder: str                       # endpoint kind: "host" or "soc"
    generation: int = 0
    rate_cap_gbps: Optional[float] = None
    degraded: bool = False


class _TenantState:
    """Everything mutable the runtime tracks for one tenant."""

    def __init__(self, spec: TenantSpec, requester: str, sim):
        self.spec = spec
        self.requester = requester
        self.queue = Store(sim)          # unbounded; bounded by check below
        self.lease: Optional[PathLease] = None
        # Per-worker (requester_qp, responder_qp); replaced on re-bind.
        self.qps: List[Tuple[QueuePair, QueuePair]] = []
        self.local_mrs = []
        self.remote_mrs = []
        self.bucket: Optional[TokenBucket] = None
        self.stream = self._make_stream(spec)
        self.wr_ids = itertools.count(1)
        self.admitted = 0
        self.finished = 0
        self.arrivals_done = False
        self.degraded_served = 0

    @staticmethod
    def _make_stream(spec: TenantSpec) -> RequestStream:
        region = AddressRegion(0, int(spec.working_set_bytes))
        payload = max(1, spec.payload)
        if spec.hot_range_bytes:
            pattern = RangeLimitedPattern(region, payload,
                                          int(spec.hot_range_bytes))
        else:
            pattern = UniformPattern(region, payload)
        return RequestStream(spec.mix, pattern, seed=spec.seed)


class ServingRuntime:
    """Executes tenant streams against the cluster under lease control."""

    MAX_ATTEMPTS = 6

    def __init__(self, cluster: SimCluster, ctx: RdmaContext,
                 tenants: Iterable[TenantSpec], tracker: SloTracker):
        self.cluster = cluster
        self.ctx = ctx
        self.sim = cluster.sim
        self.tracker = tracker
        self.specs: List[TenantSpec] = list(tenants)
        names = [t.name for t in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.completions: List[CompletionRecord] = []
        # Hybrid-engine hook (repro.sim.hybrid).  None on pure-DES runs:
        # every touch point guards with one ``is not None`` check, so
        # the default engine's event sequence is untouched.
        self.hybrid = None
        # Cross-shard fabric hook (repro.sim.xshard): the shard's bound
        # ShardChannel on sharded runs with cross-machine traffic.
        # Same dormancy contract as ``hybrid`` — None means every event
        # stays machine-local and the sequence is untouched.
        self.xshard = None
        # Cluster-scheduler directives: tenant -> remote machine whose
        # host currently serves it (set/cleared via ctl messages).  Same
        # dormancy contract — empty means all serving is local.
        self.remote_serve: Dict[str, str] = {}
        self._tenants: Dict[str, _TenantState] = {}
        clients = [n.name for n in cluster.clients()]
        client_i = 0
        for spec in self.specs:
            if spec.bulk:
                requester = "host"
            else:
                if client_i >= len(clients):
                    raise ValueError(
                        f"{len(clients)} client nodes for more client "
                        f"tenants; raise n_clients")
                requester = clients[client_i]
                client_i += 1
            self._tenants[spec.name] = _TenantState(spec, requester, self.sim)

    # -- control-plane surface (used by the scheduler) ----------------------

    def lease(self, tenant: str) -> PathLease:
        lease = self._tenants[tenant].lease
        if lease is None:
            raise ValueError(f"tenant {tenant!r} was never placed")
        return lease

    def place(self, spec: TenantSpec, placement: Placement) -> PathLease:
        """Bind a tenant for the first time and start its processes."""
        t = self._tenants[spec.name]
        if t.lease is not None:
            raise ValueError(f"tenant {spec.name!r} already placed")
        t.lease = PathLease(tenant=spec.name, path=placement.path,
                            responder=placement.responder,
                            rate_cap_gbps=placement.rate_cap_gbps,
                            degraded=placement.degraded)
        self._apply_rate_cap(t)
        if not placement.degraded:
            self._connect(t)
        self.sim.process(self._arrivals(t))
        for wid in range(spec.workers):
            self.sim.process(self._worker(t, wid))
        return t.lease

    def rebind(self, tenant: str, placement: Placement) -> PathLease:
        """Enact a migration/failover decision on a live tenant."""
        t = self._tenants[tenant]
        lease = self.lease(tenant)
        lease.generation += 1
        lease.path = placement.path
        lease.responder = placement.responder
        lease.degraded = placement.degraded
        lease.rate_cap_gbps = placement.rate_cap_gbps
        self._apply_rate_cap(t)
        if not placement.degraded:
            self._connect(t)
        return lease

    @property
    def soc_available(self) -> bool:
        """Is server 0's SoC alive (the schedulable SoC endpoint)?"""
        soc = self.cluster.nodes.get("soc")
        return soc is not None and not soc.crashed

    @property
    def done(self) -> bool:
        """All arrivals emitted and every admitted request resolved."""
        return all(t.arrivals_done and t.finished >= t.admitted
                   for t in self._tenants.values())

    def progress(self) -> Dict[str, Tuple[int, int]]:
        """Per-tenant ``(admitted, finished)`` — the runtime-side half
        of the conservation identity (the tracker holds the rest)."""
        return {name: (t.admitted, t.finished)
                for name, t in self._tenants.items()}

    def offered_mrps_by_path(self) -> Dict[CommPath, float]:
        """Open-loop offered load currently bound to each path (Mrps)."""
        offered: Dict[CommPath, float] = {}
        for t in self._tenants.values():
            if t.lease is None:
                continue
            path = t.lease.path
            offered[path] = (offered.get(path, 0.0)
                             + to_mpps(1.0 / t.spec.interval_ns))
        return offered

    # -- wiring -------------------------------------------------------------

    def _responder_node(self, lease: PathLease) -> str:
        # Endpoint kinds map to server 0's node names directly.
        return lease.responder

    def _apply_rate_cap(self, t: _TenantState) -> None:
        cap = t.lease.rate_cap_gbps if t.lease else None
        if cap:
            burst = max(t.spec.payload, 4096)
            t.bucket = TokenBucket(gbps(cap), burst)
        else:
            t.bucket = None

    def _connect(self, t: _TenantState) -> None:
        """(Re)connect one QP pair per worker to the lease's responder."""
        responder = self._responder_node(t.lease)
        payload = max(1, t.spec.payload)
        t.qps = []
        t.local_mrs = []
        t.remote_mrs = []
        for _wid in range(t.spec.workers):
            qp_a, qp_b = self.ctx.connect_rc(t.requester, responder)
            qp_a.retry_cnt = _RETRY_CNT
            qp_a.timeout_ns = _TIMEOUT_NS
            t.qps.append((qp_a, qp_b))
            t.local_mrs.append(self.ctx.reg_mr(t.requester, payload))
            t.remote_mrs.append(self.ctx.reg_mr(responder, payload))

    # -- data plane ---------------------------------------------------------

    def _arrivals(self, t: _TenantState):
        """Open-loop arrival process with bounded-queue admission.

        The relative ``timeout(interval_ns)`` stepping is load-bearing:
        arrival instants accumulate float rounding one hop at a time,
        and the pure-DES bit-identity contract pins that exact sequence.
        The hybrid handover below is the only absolute-time splice, and
        it only runs under ``engine="hybrid"``.
        """
        spec = t.spec
        seq = 0
        while seq < spec.requests:
            yield self.sim.timeout(spec.interval_ns)
            hybrid = self.hybrid
            if hybrid is not None and hybrid.wants(t):
                # Hand the stream to the analytic recurrence.  It
                # synthesizes arrivals from ``seq`` onward and resumes
                # us at the exact instant of the first event-mode
                # arrival (or past the end of the stream).
                seq = yield from hybrid.handover(t, seq)
                if seq >= spec.requests:
                    break
            op, _payload, _addr = next(t.stream)
            if len(t.queue) >= spec.queue_limit:
                self.tracker.observe_reject(spec.name, self.sim.now)
                self.cluster.bump("sched.rejected")
            else:
                t.admitted += 1
                t.queue.put((seq, op, self.sim.now))
            seq += 1
        t.arrivals_done = True
        for _ in range(spec.workers):
            t.queue.put(None)            # wake idle workers to exit

    def _worker(self, t: _TenantState, wid: int):
        while True:
            item = yield t.queue.get()
            if item is None:
                return
            if item[0] == "hold":
                # Hybrid splice-back: this worker stands in for an
                # analytic in-flight request until its completion time.
                until = item[1]
                if until > self.sim.now:
                    yield self.sim.timeout(until - self.sim.now)
                continue
            seq, op, arrived_ns = item
            yield from self._serve_one(t, wid, seq, op, arrived_ns)

    def _serve_one(self, t: _TenantState, wid: int, seq: int, op: Opcode,
                   arrived_ns: float):
        """One admitted request, retried across lease generations."""
        spec = t.spec
        payload = max(1, spec.payload)
        attempts = 0
        while True:
            lease = t.lease
            attempts += 1
            xshard = self.xshard
            if xshard is not None and xshard.machine_down():
                # The whole machine (host *and* SoC) is dead: nothing
                # local can serve or relay this request.  It is lost at
                # the instant it would have dispatched — never hung.
                self.cluster.bump("sched.lost")
                self.cluster.bump("sched.machine_lost")
                self._finish(t, seq, op, arrived_ns, ok=False,
                             attempts=attempts, degraded=lease.degraded)
                return
            if lease.degraded:
                export = (xshard.exports.get(spec.name)
                          if xshard is not None else None)
                remote_dst = None
                if export is not None and export.kind == "failover":
                    remote_dst = xshard.failover_dst(export)
                if remote_dst is not None:
                    # Host-ward failover to *another machine*: the
                    # request rides the cross-shard fabric and is
                    # served by the destination shard's host relay;
                    # latency includes both link traversals.  Under a
                    # cluster fault plan the destination honors
                    # liveness (dead machines are replaced by the
                    # first survivor) and the wait resolves to LOST
                    # when the ack timeout expires.
                    outcome = yield xshard.relay_request(
                        spec.name, remote_dst, payload)
                    if outcome is LOST:
                        self.cluster.bump("sched.lost")
                        self._finish(t, seq, op, arrived_ns, ok=False,
                                     attempts=attempts, degraded=True)
                        return
                else:
                    # Host-local relay: CPU service + DRAM-speed copy.
                    host = self.cluster.node("host")
                    service = (host.cpu.two_sided_latency_ns
                               + payload / gib_per_s(_RELAY_GIBPS))
                    yield self.sim.timeout(service)
                t.degraded_served += 1
                self._finish(t, seq, op, arrived_ns, ok=True,
                             attempts=attempts, degraded=True)
                return
            remote = self.remote_serve.get(spec.name)
            if remote is not None and xshard is not None:
                if (remote == xshard.shard
                        or (xshard.injector is not None
                            and xshard.injector.machine_down(
                                remote, self.sim.now))):
                    remote = None    # stale directive; serve locally
            else:
                remote = None
            if remote is not None:
                # Cluster-scheduler offload: the request is relayed to
                # another machine's host over the fabric, relieving
                # local path contention at the cost of two link
                # traversals plus the remote relay service.
                outcome = yield xshard.relay_request(
                    spec.name, remote, payload)
                if outcome is LOST:
                    self.cluster.bump("sched.lost")
                    self._finish(t, seq, op, arrived_ns, ok=False,
                                 attempts=attempts)
                    return
                self.cluster.bump("sched.remote_served")
                self._finish(t, seq, op, arrived_ns, ok=True,
                             attempts=attempts)
                return
            if t.bucket is not None:
                delay = t.bucket.delay_for(spec.payload, self.sim.now)
                if delay > 0:
                    yield self.sim.timeout(delay)
            qp, peer = t.qps[wid]
            if qp.state is QPState.ERROR:
                qp.recover()
            posted_ns = self.sim.now
            wr = next(t.wr_ids)
            if op is Opcode.READ:
                work = qp.post_read(wr, t.local_mrs[wid],
                                    t.remote_mrs[wid], payload)
            elif op is Opcode.WRITE:
                work = qp.post_write(wr, t.local_mrs[wid],
                                     t.remote_mrs[wid], payload)
            else:
                peer.post_recv(wr, t.remote_mrs[wid], 0, payload)
                work = qp.post_send(wr, bytes(payload))
            yield work
            ok = any(c.wr_id == wr and c.ok for c in qp.send_cq.poll())
            if ok:
                hybrid = self.hybrid
                if hybrid is not None:
                    # Feed the empirical service-time profile: post →
                    # completion, net of queue wait and bucket pacing.
                    hybrid.record_service(t.spec.name, op,
                                          self.sim.now - posted_ns)
                self._finish(t, seq, op, arrived_ns, ok=True,
                             attempts=attempts)
                return
            if attempts >= self.MAX_ATTEMPTS:
                self.cluster.bump("sched.lost")
                self._finish(t, seq, op, arrived_ns, ok=False,
                             attempts=attempts)
                return
            # else: retry — possibly on a migrated lease (fresh QPs).

    def _finish(self, t: _TenantState, seq: int, op: Opcode,
                arrived_ns: float, ok: bool, attempts: int,
                degraded: bool = False) -> None:
        # Ingress (the LB round trip, for rack scenarios) is a fixed
        # overhead outside the machine: fold it in by backdating the
        # start so latency_ns reports the user-observed value while the
        # in-machine event sequence stays byte-identical to ingress=0.
        record = CompletionRecord(
            tenant=t.spec.name, seq=seq, op=op.value, path=t.lease.path,
            start_ns=arrived_ns - t.spec.ingress_ns, end_ns=self.sim.now,
            ok=ok, attempts=attempts, degraded=degraded)
        t.finished += 1
        self.completions.append(record)
        self.tracker.observe(record, t.spec.payload)
        xshard = self.xshard
        if xshard is not None and ok and not degraded:
            export = xshard.exports.get(t.spec.name)
            if export is not None and export.kind == "bulk":
                # Asynchronous offload shipping: the completed payload
                # crosses the fabric to the destination shard's host.
                xshard.ship_bulk(t.spec.name, export.dst_shard,
                                 t.spec.payload)
