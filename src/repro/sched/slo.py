"""Per-tenant SLO accounting over rolling windows of live completions.

The scheduler never sees the future: each control tick it asks "over
the last window, what latency did tenant T actually observe, and how
much of its stream got through?"  :class:`SloTracker` answers from the
runtime's completion feed — the simulated equivalent of scraping
per-tenant histograms off a serving binary.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Tuple

from repro.sched.tenant import CompletionRecord, SloSpec, TenantSpec
from repro.units import to_gbps


@dataclass(frozen=True)
class WindowStats:
    """One tenant's observed behaviour over a rolling window."""

    tenant: str
    window_ns: float
    count: int
    p50_ns: float
    p99_ns: float
    goodput_gbps: float
    rejected: int          # arrivals bounced by the bounded queue
    violations: int        # completions over the SLO deadline

    @property
    def idle(self) -> bool:
        return self.count == 0 and self.rejected == 0


class SloTracker:
    """Rolling per-tenant completion windows, pruned by simulated time."""

    def __init__(self, tenants, window_ns: float = 100_000.0):
        if window_ns <= 0:
            raise ValueError(f"window must be positive: {window_ns}")
        self.window_ns = window_ns
        self._specs: Dict[str, TenantSpec] = {t.name: t for t in tenants}
        #: (end_ns, latency_ns, payload, ok) per tenant, oldest first.
        self._events: Dict[str, Deque[Tuple[float, float, int, bool]]] = {
            t.name: deque() for t in tenants}
        self._rejects: Dict[str, Deque[float]] = {
            t.name: deque() for t in tenants}
        # Totals survive pruning (used by the final report).
        self.completed: Dict[str, int] = {t.name: 0 for t in tenants}
        self.rejected: Dict[str, int] = {t.name: 0 for t in tenants}
        self.lost: Dict[str, int] = {t.name: 0 for t in tenants}

    def observe(self, record: CompletionRecord, payload: int) -> None:
        """Feed one completion from the runtime."""
        events = self._events[record.tenant]
        events.append((record.end_ns, record.latency_ns, payload, record.ok))
        if record.ok:
            self.completed[record.tenant] += 1
        else:
            self.lost[record.tenant] += 1

    def observe_reject(self, tenant: str, now: float) -> None:
        """Feed one bounced arrival (queue full)."""
        self._rejects[tenant].append(now)
        self.rejected[tenant] += 1

    def merge(self, other: "SloTracker") -> "SloTracker":
        """Fold another tracker's observations into this one, in place.

        Sharded runs give each shard its own tracker; the parent merges
        them into one report-wide view.  Window sizes must agree.  For
        tenants present on both sides the event and reject streams are
        merged in time order, so :meth:`window` pruning stays monotone
        and quantiles over the union window come out the same as if one
        tracker had observed every completion.
        """
        if other.window_ns != self.window_ns:
            raise ValueError(
                f"cannot merge trackers with different windows: "
                f"{self.window_ns} vs {other.window_ns}")
        for name, spec in other._specs.items():
            if name not in self._specs:
                self._specs[name] = spec
                self._events[name] = deque(other._events[name])
                self._rejects[name] = deque(other._rejects[name])
                self.completed[name] = other.completed[name]
                self.rejected[name] = other.rejected[name]
                self.lost[name] = other.lost[name]
                continue
            self._events[name] = deque(heapq.merge(
                self._events[name], other._events[name],
                key=lambda ev: ev[0]))
            self._rejects[name] = deque(heapq.merge(
                self._rejects[name], other._rejects[name]))
            self.completed[name] += other.completed[name]
            self.rejected[name] += other.rejected[name]
            self.lost[name] += other.lost[name]
        return self

    def window(self, tenant: str, now: float) -> WindowStats:
        """The tenant's stats over ``[now - window, now]``."""
        spec = self._specs[tenant]
        slo: SloSpec = spec.slo
        horizon = now - self.window_ns
        events = self._events[tenant]
        while events and events[0][0] < horizon:
            events.popleft()
        rejects = self._rejects[tenant]
        while rejects and rejects[0] < horizon:
            rejects.popleft()

        latencies = sorted(lat for _end, lat, _p, ok in events if ok)
        good_bytes = sum(p for _end, lat, p, ok in events
                         if ok and lat <= slo.deadline)
        violations = sum(1 for _end, lat, _p, ok in events
                         if ok and lat > slo.deadline)
        if latencies:
            p50 = latencies[max(0, int(0.50 * len(latencies)) - 1)
                            if len(latencies) > 1 else 0]
            p99 = latencies[min(len(latencies) - 1,
                                max(0, int(0.99 * len(latencies))))]
        else:
            p50 = p99 = 0.0
        span = min(self.window_ns, now) or 1.0
        return WindowStats(
            tenant=tenant,
            window_ns=self.window_ns,
            count=len(latencies),
            p50_ns=p50,
            p99_ns=p99,
            goodput_gbps=to_gbps(good_bytes / span),
            rejected=len(rejects),
            violations=violations,
        )
