"""Per-tenant SLO accounting over rolling windows of live completions.

The scheduler never sees the future: each control tick it asks "over
the last window, what latency did tenant T actually observe, and how
much of its stream got through?"  :class:`SloTracker` answers from the
runtime's completion feed — the simulated equivalent of scraping
per-tenant histograms off a serving binary.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.sched.tenant import CompletionRecord, SloSpec, TenantSpec
from repro.units import to_gbps


@dataclass(frozen=True)
class WindowStats:
    """One tenant's observed behaviour over a rolling window."""

    tenant: str
    window_ns: float
    count: int
    p50_ns: float
    p99_ns: float
    goodput_gbps: float
    rejected: int          # arrivals bounced by the bounded queue
    violations: int        # completions over the SLO deadline

    @property
    def idle(self) -> bool:
        return self.count == 0 and self.rejected == 0


@dataclass(frozen=True)
class RawWindow:
    """One fixed (tumbling) window's raw material, kept for statistics.

    Unlike :class:`WindowStats` — a *rolling* view pruned as the
    scheduler ticks — these windows are archived for the whole run so
    the :mod:`repro.stats` layer can form warm-up-truncated batch-means
    estimates post hoc without re-running.  Counts and sums are carried
    alongside the quantile points: ``latency_sum_ns`` is what Little's
    law consumes (time-average occupancy ``L = Σ latency / elapsed``),
    ``good_bytes`` is what goodput CIs are built from.
    """

    tenant: str
    index: int              # window number: int(end_ns // window_ns)
    end_ns: float           # exclusive right edge of the window
    count: int              # ok completions landing in the window
    latency_sum_ns: float
    p50_ns: float
    p99_ns: float
    good_bytes: int         # payload bytes delivered within deadline
    goodput_gbps: float
    rejected: int
    lost: int
    violations: int

    @property
    def mean_latency_ns(self) -> float:
        return self.latency_sum_ns / self.count if self.count else 0.0


class _WindowAccum:
    """Mutable per-window accumulator behind the fixed-window archive."""

    __slots__ = ("latencies", "good_bytes", "rejected", "lost", "violations")

    def __init__(self):
        self.latencies: list = []
        self.good_bytes = 0
        self.rejected = 0
        self.lost = 0
        self.violations = 0

    def copy(self) -> "_WindowAccum":
        other = _WindowAccum()
        other.latencies = list(self.latencies)
        other.good_bytes = self.good_bytes
        other.rejected = self.rejected
        other.lost = self.lost
        other.violations = self.violations
        return other

    def fold(self, other: "_WindowAccum") -> None:
        self.latencies.extend(other.latencies)
        self.good_bytes += other.good_bytes
        self.rejected += other.rejected
        self.lost += other.lost
        self.violations += other.violations


class SloTracker:
    """Rolling per-tenant completion windows, pruned by simulated time."""

    def __init__(self, tenants, window_ns: float = 100_000.0):
        if window_ns <= 0:
            raise ValueError(f"window must be positive: {window_ns}")
        self.window_ns = window_ns
        self._specs: Dict[str, TenantSpec] = {t.name: t for t in tenants}
        #: (end_ns, latency_ns, payload, ok) per tenant, oldest first.
        self._events: Dict[str, Deque[Tuple[float, float, int, bool]]] = {
            t.name: deque() for t in tenants}
        self._rejects: Dict[str, Deque[float]] = {
            t.name: deque() for t in tenants}
        # Totals survive pruning (used by the final report).
        self.completed: Dict[str, int] = {t.name: 0 for t in tenants}
        self.rejected: Dict[str, int] = {t.name: 0 for t in tenants}
        self.lost: Dict[str, int] = {t.name: 0 for t in tenants}
        # Fixed-window archive for the stats layer: per tenant, per
        # window index, the accumulated raw material (never pruned).
        self._archive: Dict[str, Dict[int, _WindowAccum]] = {
            t.name: {} for t in tenants}

    def _accum(self, tenant: str, when: float) -> "_WindowAccum":
        idx = int(when // self.window_ns)
        per_tenant = self._archive[tenant]
        acc = per_tenant.get(idx)
        if acc is None:
            acc = per_tenant[idx] = _WindowAccum()
        return acc

    def observe(self, record: CompletionRecord, payload: int) -> None:
        """Feed one completion from the runtime."""
        events = self._events[record.tenant]
        events.append((record.end_ns, record.latency_ns, payload, record.ok))
        acc = self._accum(record.tenant, record.end_ns)
        if record.ok:
            self.completed[record.tenant] += 1
            deadline = self._specs[record.tenant].slo.deadline
            acc.latencies.append(record.latency_ns)
            if record.latency_ns <= deadline:
                acc.good_bytes += payload
            else:
                acc.violations += 1
        else:
            self.lost[record.tenant] += 1
            acc.lost += 1

    def observe_reject(self, tenant: str, now: float) -> None:
        """Feed one bounced arrival (queue full)."""
        self._rejects[tenant].append(now)
        self.rejected[tenant] += 1
        self._accum(tenant, now).rejected += 1

    def merge(self, other: "SloTracker") -> "SloTracker":
        """Fold another tracker's observations into this one, in place.

        Sharded runs give each shard its own tracker; the parent merges
        them into one report-wide view.  Window sizes must agree.  For
        tenants present on both sides the event and reject streams are
        merged in time order, so :meth:`window` pruning stays monotone
        and quantiles over the union window come out the same as if one
        tracker had observed every completion.
        """
        if other.window_ns != self.window_ns:
            raise ValueError(
                f"cannot merge trackers with different windows: "
                f"{self.window_ns} vs {other.window_ns}")
        for name, spec in other._specs.items():
            if name not in self._specs:
                self._specs[name] = spec
                self._events[name] = deque(other._events[name])
                self._rejects[name] = deque(other._rejects[name])
                self.completed[name] = other.completed[name]
                self.rejected[name] = other.rejected[name]
                self.lost[name] = other.lost[name]
                self._archive[name] = {
                    idx: acc.copy()
                    for idx, acc in other._archive[name].items()}
                continue
            self._events[name] = deque(heapq.merge(
                self._events[name], other._events[name],
                key=lambda ev: ev[0]))
            self._rejects[name] = deque(heapq.merge(
                self._rejects[name], other._rejects[name]))
            self.completed[name] += other.completed[name]
            self.rejected[name] += other.rejected[name]
            self.lost[name] += other.lost[name]
            mine = self._archive[name]
            for idx, acc in other._archive[name].items():
                if idx in mine:
                    mine[idx].fold(acc)
                else:
                    mine[idx] = acc.copy()
        return self

    def window_series(self, tenant: str) -> Tuple[RawWindow, ...]:
        """Every archived fixed window for ``tenant``, oldest first.

        Quantiles use the same order-statistic convention as
        :meth:`window`, so a single-window series reconciles with the
        rolling view.  The export is deterministic: latencies are
        sorted within each window, windows ordered by index.
        """
        out = []
        for idx in sorted(self._archive[tenant]):
            acc = self._archive[tenant][idx]
            latencies = sorted(acc.latencies)
            n = len(latencies)
            if latencies:
                p50 = latencies[max(0, int(0.50 * n) - 1) if n > 1 else 0]
                p99 = latencies[min(n - 1, max(0, int(0.99 * n)))]
            else:
                p50 = p99 = 0.0
            out.append(RawWindow(
                tenant=tenant,
                index=idx,
                end_ns=(idx + 1) * self.window_ns,
                count=n,
                latency_sum_ns=sum(latencies),
                p50_ns=p50,
                p99_ns=p99,
                good_bytes=acc.good_bytes,
                goodput_gbps=to_gbps(acc.good_bytes / self.window_ns),
                rejected=acc.rejected,
                lost=acc.lost,
                violations=acc.violations,
            ))
        return tuple(out)

    def closed_window_digest(self, tenant: str, now: float
                             ) -> Optional[Tuple[int, int, float, int, int]]:
        """``(index, count, p99_ns, rejected, violations)`` for the most
        recent *closed* fixed window, or ``None`` before the first one.

        Built for barrier-time heartbeats: it reads the archive only —
        no pruning side effects like :meth:`window`, no O(all-windows)
        walk like :meth:`window_series` — so calling it every sync
        window is cheap and cannot perturb the rolling view.
        """
        cutoff = int(now // self.window_ns)
        closed = [idx for idx in self._archive[tenant] if idx < cutoff]
        if not closed:
            return None
        idx = max(closed)
        acc = self._archive[tenant][idx]
        latencies = sorted(acc.latencies)
        n = len(latencies)
        p99 = (latencies[min(n - 1, max(0, int(0.99 * n)))]
               if latencies else 0.0)
        return (idx, n, p99, acc.rejected, acc.violations)

    def window(self, tenant: str, now: float) -> WindowStats:
        """The tenant's stats over ``[now - window, now]``."""
        spec = self._specs[tenant]
        slo: SloSpec = spec.slo
        horizon = now - self.window_ns
        events = self._events[tenant]
        while events and events[0][0] < horizon:
            events.popleft()
        rejects = self._rejects[tenant]
        while rejects and rejects[0] < horizon:
            rejects.popleft()

        latencies = sorted(lat for _end, lat, _p, ok in events if ok)
        good_bytes = sum(p for _end, lat, p, ok in events
                         if ok and lat <= slo.deadline)
        violations = sum(1 for _end, lat, _p, ok in events
                         if ok and lat > slo.deadline)
        if latencies:
            p50 = latencies[max(0, int(0.50 * len(latencies)) - 1)
                            if len(latencies) > 1 else 0]
            p99 = latencies[min(len(latencies) - 1,
                                max(0, int(0.99 * len(latencies))))]
        else:
            p50 = p99 = 0.0
        span = min(self.window_ns, now) or 1.0
        return WindowStats(
            tenant=tenant,
            window_ns=self.window_ns,
            count=len(latencies),
            p50_ns=p50,
            p99_ns=p99,
            goodput_gbps=to_gbps(good_bytes / span),
            rejected=len(rejects),
            violations=violations,
        )
