"""The control loop: observe windows, consult the policy, enact leases.

:class:`PathScheduler` is the online counterpart of the static
:class:`~repro.core.advisor.Advisor`.  It ticks on simulated time
(default every 20 µs), and each tick it:

1. checks SoC health (the fault injector flips ``Node.crashed``);
2. pulls each tenant's rolling :class:`~repro.sched.slo.WindowStats`
   from the tracker — live telemetry, not oracle knowledge;
3. asks the :class:`~repro.sched.policy.PathPolicy` for a decision;
4. enacts it through :meth:`~repro.sched.runtime.ServingRuntime.rebind`
   and attributes it — a :class:`~repro.sched.policy.Decision` in the
   log, a zero-duration span annotation in the trace (so ``repro trace``
   timelines show *why* a flow moved), and a telemetry counter bump.

Every input is deterministic (DES time, seeded streams), so two runs of
the same plan produce bit-identical decision logs — asserted by
``tests/sched/test_determinism.py``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sched.policy import Decision, PathPolicy, Placement
from repro.sched.runtime import ServingRuntime
from repro.sched.slo import SloTracker
from repro.trace.tracer import Tracer


class PathScheduler:
    """Online path scheduling over a serving runtime."""

    def __init__(self, runtime: ServingRuntime, policy: PathPolicy,
                 tracker: SloTracker, interval_ns: float = 20_000.0,
                 tracer: Optional[Tracer] = None, machine: str = ""):
        if interval_ns <= 0:
            raise ValueError(f"tick interval must be positive: {interval_ns}")
        self.runtime = runtime
        self.policy = policy
        self.tracker = tracker
        self.interval_ns = interval_ns
        self.tracer = tracer
        self.machine = machine
        self.decisions: List[Decision] = []
        # Hybrid-engine listener: called with each post-placement
        # Decision so the controller can open a guard window around the
        # transient.  None on pure-DES runs (no events either way).
        self.on_decision = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Place every tenant and start the control loop."""
        soc_ok = self.runtime.soc_available
        for spec in self.runtime.specs:
            placement = self.policy.place(spec, soc_available=soc_ok)
            lease = self.runtime.place(spec, placement)
            self._record(spec.name, "place", placement, lease.generation,
                         from_path=None, from_responder="")
            if placement.rate_cap_gbps:
                self._record(
                    spec.name, "admission", placement, lease.generation,
                    from_path=None, from_responder="",
                    reason=f"rate cap {placement.rate_cap_gbps:.0f} Gbps",
                    advice_refs=("rule-p-minus-n",))
        self.runtime.sim.process(self._loop())

    def _loop(self):
        while not self.runtime.done:
            yield self.runtime.sim.timeout(self.interval_ns)
            self.tick()

    # -- one control tick ---------------------------------------------------

    def tick(self) -> None:
        now = self.runtime.sim.now
        soc_ok = self.runtime.soc_available
        offered = self.runtime.offered_mrps_by_path()
        for spec in self.runtime.specs:
            lease = self.runtime.lease(spec.name)
            stats = self.tracker.window(spec.name, now)
            placement = self.policy.decide(
                spec, lease.path, lease.responder, lease.degraded,
                stats, soc_ok, now, offered)
            if placement is None:
                continue
            from_path, from_responder = lease.path, lease.responder
            lease = self.runtime.rebind(spec.name, placement)
            self.policy.note_change(spec.name, now)
            kind = ("failover" if placement.reason == "soc-crash"
                    else "migrate")
            self.runtime.cluster.bump(f"sched.{kind}s")
            self._record(spec.name, kind, placement, lease.generation,
                         from_path=from_path, from_responder=from_responder,
                         observed_p99_ns=stats.p99_ns)
            if self.on_decision is not None:
                self.on_decision(self.decisions[-1])

    # -- attribution --------------------------------------------------------

    def _record(self, tenant: str, kind: str, placement: Placement,
                generation: int, from_path, from_responder: str,
                reason: Optional[str] = None,
                advice_refs: Optional[tuple] = None,
                observed_p99_ns: float = 0.0) -> None:
        decision = Decision(
            time_ns=self.runtime.sim.now, tenant=tenant, kind=kind,
            to_path=placement.path, to_responder=placement.responder,
            from_path=from_path, from_responder=from_responder,
            reason=reason if reason is not None else placement.reason,
            advice_refs=(advice_refs if advice_refs is not None
                         else placement.advice_refs),
            observed_p99_ns=observed_p99_ns, generation=generation,
            machine=self.machine)
        self.decisions.append(decision)
        if self.tracer is not None:
            self.tracer.annotate(
                f"sched.{kind}", category="control", tenant=tenant,
                to_path=placement.path.value, reason=decision.reason)
