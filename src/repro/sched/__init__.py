"""Online path scheduling: a serving runtime over the DES cluster.

The paper ends in *advice* — four offloading rules plus the §4
bandwidth-partitioning rule — and :mod:`repro.core.advisor` applies it
statically to a workload profile.  This package enacts the same advice
as an online control loop, the way a production multi-tenant deployment
would have to:

* :class:`TenantSpec`/:class:`SloSpec` — an open-loop request stream
  (reusing :mod:`repro.workloads`) plus its latency/goodput targets.
* :class:`ServingRuntime` — admits each tenant's stream into the
  simulated cluster through real QPs, with bounded queues
  (backpressure), per-flow re-binding, and token-bucket admission caps.
* :class:`PathPolicy` — the decision function: initial placement via
  the advisor, Fig 11 partition budgets for concurrent ①/② tenants,
  the ``P − N`` cap for path-③ tenants, SLO-violation migrations and
  host-ward failover when the SoC crashes.
* :class:`PathScheduler` — the control loop: ticks on simulated time,
  reads live telemetry and per-tenant windows, applies the policy, and
  attributes every decision (span annotations + a decision log).
* :func:`run_serve` — the one-call engine behind ``repro serve``,
  ``benchmarks/bench_scheduler.py`` and ``Session.serve``.
"""

from repro.sched.tenant import CompletionRecord, SloSpec, TenantSpec
from repro.sched.slo import SloTracker, WindowStats
from repro.sched.policy import Decision, PathPolicy
from repro.sched.runtime import PathLease, ServingRuntime
from repro.sched.scheduler import PathScheduler
from repro.sched.serve import (
    ServeReport,
    TenantReport,
    mixed_tenant_workload,
    run_serve,
)

__all__ = [
    "CompletionRecord",
    "Decision",
    "PathLease",
    "PathPolicy",
    "PathScheduler",
    "ServeReport",
    "ServingRuntime",
    "SloSpec",
    "SloTracker",
    "TenantReport",
    "TenantSpec",
    "WindowStats",
    "mixed_tenant_workload",
    "run_serve",
]
