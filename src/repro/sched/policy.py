"""The decision function: the paper's advice, enacted per control tick.

:class:`PathPolicy` is pure decision logic — no simulation objects, no
side effects — so every choice the scheduler makes is a deterministic
function of (tenant spec, current lease, window stats, SoC health,
time).  The mapping from the paper's advice to decisions:

* **Advice #1 (skew)** / **capacity** — the advisor's initial placement
  puts skewed or oversized one-sided tenants on path ① (host memory).
* **Wimpy SoC** — two-sided tenants terminate on the host.
* **Fig 11 partition** — when tenants occupy both ① and ②, migrations
  are admitted against the *concurrent* per-path budgets from the
  :class:`~repro.core.flows.ConcurrencyAnalyzer`, not the solo peaks.
* **Rule P − N** — path-③ tenants get a token-bucket rate cap at the
  partitioned budget (56 Gbps on the paper's testbed); arrivals beyond
  it back up in the bounded queue and bounce (admission control).
* **Failover** — a crashed SoC fails every SoC-terminated tenant
  host-ward: path-② tenants re-bind to host memory, path-③ tenants
  drop to the degraded host-local relay (PR 3's graceful degradation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.advisor import Advisor, OffloadPlan
from repro.core.paths import CommPath, Opcode
from repro.net.topology import Testbed
from repro.sched.slo import WindowStats
from repro.sched.tenant import TenantSpec
from repro.units import to_mpps


@dataclass(frozen=True)
class Decision:
    """One scheduling decision, exactly as enacted (and span-attributed)."""

    time_ns: float
    tenant: str
    kind: str                       # place | migrate | failover | admission
    to_path: CommPath
    to_responder: str
    from_path: Optional[CommPath] = None
    from_responder: str = ""
    reason: str = ""
    advice_refs: Tuple[str, ...] = ()
    observed_p99_ns: float = 0.0
    generation: int = 0
    #: Which machine (shard) enacted the decision; "" on unsharded runs.
    #: Shards the decision log per machine so the cluster-level merge
    #: can attribute every move.
    machine: str = ""

    def as_tuple(self) -> tuple:
        """A hashable, bit-comparable form (the determinism oracle)."""
        return (self.time_ns, self.tenant, self.kind, self.to_path.value,
                self.to_responder,
                self.from_path.value if self.from_path else None,
                self.from_responder, self.reason, self.advice_refs,
                self.observed_p99_ns, self.generation, self.machine)


@dataclass(frozen=True)
class Placement:
    """The policy's answer for a tenant's initial (or re-)binding."""

    path: CommPath
    responder: str                  # endpoint kind: "host" or "soc"
    rate_cap_gbps: Optional[float]  # token-bucket admission cap
    degraded: bool                  # host-local relay (SoC down)
    reason: str
    advice_refs: Tuple[str, ...]


#: Which endpoint kind terminates each schedulable path.
_RESPONDER = {
    CommPath.SNIC1: "host",
    CommPath.SNIC2: "soc",
    CommPath.SNIC3_H2S: "soc",
}

#: The alternative endpoint for a client tenant (①↔②).
_ALTERNATE = {CommPath.SNIC1: CommPath.SNIC2,
              CommPath.SNIC2: CommPath.SNIC1}


class PathPolicy:
    """Advice-driven placement, migration and admission decisions.

    * ``cooldown_ns`` — minimum simulated time between migrations of
      one tenant (hysteresis against flapping).
    * ``min_samples`` — completions a window must hold before its p99
      is trusted for a migration decision.
    * ``headroom`` — fraction of a Fig 11 path budget that offered
      load may occupy before migrations *into* the path are refused.
    """

    def __init__(self, testbed: Testbed, advisor: Optional[Advisor] = None,
                 cooldown_ns: float = 60_000.0, min_samples: int = 8,
                 headroom: float = 0.9):
        self.testbed = testbed
        self.advisor = advisor or Advisor(testbed)
        self.cooldown_ns = cooldown_ns
        self.min_samples = min_samples
        self.headroom = headroom
        self._plans: Dict[str, OffloadPlan] = {}
        self._last_change: Dict[str, float] = {}

    # -- placement ----------------------------------------------------------

    @staticmethod
    def surviving_host(preferred: str, candidates: Sequence[str]
                       ) -> Optional[str]:
        """Cross-machine failover target under cluster faults.

        Deterministic and state-free so every shard and the lockstep
        parent agree: the preferred destination when it survives, else
        the first survivor in fabric order, else ``None`` (no machine
        left — the caller falls back to whatever it has locally).
        """
        if preferred in candidates:
            return preferred
        return candidates[0] if candidates else None

    def place(self, spec: TenantSpec, soc_available: bool = True) -> Placement:
        """Initial placement straight from the advisor's plan."""
        plan = self.advisor.replan(spec.profile(),
                                   previous=self._plans.get(spec.name),
                                   soc_available=soc_available)
        self._plans[spec.name] = plan
        refs = tuple(plan.advice_refs())
        if spec.bulk:
            degraded = not soc_available
            return Placement(
                path=CommPath.SNIC3_H2S,
                responder="host" if degraded else "soc",
                rate_cap_gbps=plan.path3_budget_gbps or None,
                degraded=degraded,
                reason="advisor-plan", advice_refs=refs)
        path = (plan.two_sided_path if spec.mix.send >= 0.5
                else plan.one_sided_path)
        return Placement(path=path, responder=_RESPONDER[path],
                         rate_cap_gbps=None, degraded=False,
                         reason="advisor-plan", advice_refs=refs)

    def note_change(self, tenant: str, now: float) -> None:
        """Record an enacted decision (starts the cooldown clock)."""
        self._last_change[tenant] = now

    # -- the per-tick decision ---------------------------------------------

    def decide(self, spec: TenantSpec, path: CommPath, responder: str,
               degraded: bool, stats: WindowStats, soc_available: bool,
               now: float,
               offered_mrps_by_path: Dict[CommPath, float]
               ) -> Optional[Placement]:
        """What (if anything) to change for one tenant this tick.

        ``offered_mrps_by_path`` is the runtime's view of open-loop
        offered load currently bound to each path, used for the Fig 11
        feasibility check.  Returns ``None`` for "leave it alone".
        """
        # 1. Failover dominates everything: a crashed SoC black-holes
        #    paths ② and ③ (Advice: fail host-ward).
        if not soc_available and responder == "soc" and not degraded:
            plan = self.advisor.replan(spec.profile(),
                                       previous=self._plans.get(spec.name),
                                       soc_available=False)
            self._plans[spec.name] = plan
            if spec.bulk:
                return Placement(
                    path=path, responder="host", rate_cap_gbps=None,
                    degraded=True, reason="soc-crash",
                    advice_refs=("failover",))
            return Placement(
                path=CommPath.SNIC1, responder="host", rate_cap_gbps=None,
                degraded=False, reason="soc-crash",
                advice_refs=tuple(plan.advice_refs()))

        # 2. SLO-violation migration for client tenants, under cooldown
        #    and the Fig 11 partition feasibility check.
        if spec.bulk or path not in _ALTERNATE:
            return None
        if stats.count < self.min_samples:
            return None
        if stats.p99_ns <= spec.slo.p99_ns:
            return None
        if now - self._last_change.get(spec.name, 0.0) < self.cooldown_ns:
            return None
        target = _ALTERNATE[path]
        if target is CommPath.SNIC2 and not soc_available:
            return None
        if not self._fits(spec, target, offered_mrps_by_path):
            return None
        return Placement(
            path=target, responder=_RESPONDER[target], rate_cap_gbps=None,
            degraded=False, reason="slo-p99",
            advice_refs=("fig11-partition",))

    # -- feasibility --------------------------------------------------------

    def _fits(self, spec: TenantSpec, target: CommPath,
              offered_mrps_by_path: Dict[CommPath, float]) -> bool:
        """Fig 11 admission: does the tenant fit the target's budget?

        The concurrent ①/② budgets partition the shared NIC-core pool;
        offered load already bound to the target plus the migrating
        tenant must stay inside ``headroom`` of the partition.
        """
        op = Opcode.READ if spec.mix.read >= spec.mix.write else Opcode.WRITE
        budgets = self.advisor.analyzer.concurrent_endpoint_budgets(
            op, payload=spec.payload)
        budget = budgets.get(target)
        if budget is None or budget <= 0:
            return True
        tenant_mrps = to_mpps(1.0 / spec.interval_ns)
        bound = offered_mrps_by_path.get(target, 0.0)
        return bound + tenant_mrps <= self.headroom * budget
