"""``run_serve``: one call from tenant specs to a serving report.

This is the engine behind ``repro serve``, ``Session.serve`` and
``benchmarks/bench_scheduler.py``.  It wires the whole stack — cluster,
RDMA context, SLO tracker, runtime, policy, scheduler, optional fault
plan and tracer — runs the simulation to completion, and distils the
raw completion feed into per-tenant and per-path aggregates.

Two modes:

* ``adaptive=True`` (default) — the :class:`PathScheduler` places via
  the advisor, applies the ``P − N`` rate cap, migrates on SLO
  violations and fails over on SoC crashes.
* ``adaptive=False`` — a *static* baseline: tenants are pinned to
  ``static_assignment`` (or the advisor's initial placement) with no
  caps and no control loop.  This is the strawman the benchmark
  compares against.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.paths import CommPath
from repro.core.report import format_table
from repro.faults.plan import FaultPlan
from repro.net.cluster import SimCluster
from repro.net.topology import Testbed, paper_testbed
from repro.rdma.verbs import RdmaContext
from repro.sched.policy import Decision, PathPolicy, Placement, _RESPONDER
from repro.sched.runtime import ServingRuntime
from repro.sched.scheduler import PathScheduler
from repro.sched.slo import RawWindow, SloTracker
from repro.stats.kernels import Estimate, batch_means
from repro.sched.tenant import SloSpec, TenantSpec
from repro.telemetry import Telemetry
from repro.trace.tracer import Tracer
from repro.units import GB, KB, MB, fmt_ns, to_gbps
from repro.workloads import OpMix


@dataclass(frozen=True)
class TenantReport:
    """One tenant's end-to-end outcome."""

    name: str
    final_path: str
    completed: int
    rejected: int
    lost: int
    degraded: int
    p50_ns: float
    p99_ns: float
    goodput_gbps: float       # all completed bytes / active span
    slo_goodput_gbps: float   # only bytes delivered within deadline
    slo_attainment: float     # fraction of completions within deadline
    migrations: int


@dataclass
class ServeReport:
    """The full outcome of one serving run."""

    adaptive: bool
    elapsed_ns: float
    tenants: Dict[str, TenantReport]
    decisions: List[Decision]
    path_gbps: Dict[str, float]          # steady-state delivered per path
    counters: Dict[str, float] = field(default_factory=dict)
    tracer: Optional[Tracer] = None
    engine: str = "event"
    hybrid_stats: Optional[Dict[str, int]] = None
    #: Fixed-window archive per tenant (raw material for batch-means
    #: estimates; see :meth:`repro.sched.slo.SloTracker.window_series`).
    windows: Dict[str, Tuple[RawWindow, ...]] = field(default_factory=dict)
    #: Final conservation terms per tenant:
    #: ``(arrivals, completed, rejected, lost, in_flight)``.
    conservation: Dict[str, Tuple[int, int, int, int, int]] = field(
        default_factory=dict)

    @property
    def worst_p99_ns(self) -> float:
        """Deprecated bare point estimate — use :meth:`worst_p99`.

        The windowed archive lets the report quote the worst tenant's
        p99 as a mean ± CI over warm windows instead of a single order
        statistic; this property remains for callers that predate the
        stats layer.
        """
        warnings.warn(
            "ServeReport.worst_p99_ns is a single-run point estimate; "
            "use ServeReport.worst_p99() for a mean ± CI Estimate",
            DeprecationWarning, stacklevel=2)
        return max((t.p99_ns for t in self.tenants.values()), default=0.0)

    def p99(self, tenant: str, confidence: float = 0.95) -> Estimate:
        """Batch-means estimate of the tenant's per-window p99 (ns)."""
        series = [w.p99_ns for w in self.windows.get(tenant, ())
                  if w.count > 0]
        if not series:
            return Estimate(mean=self.tenants[tenant].p99_ns,
                            half_width=float("inf"), n=1,
                            confidence=confidence)
        return batch_means(series, confidence=confidence)

    def worst_p99(self, confidence: float = 0.95) -> Estimate:
        """The worst tenant's p99 as a mean ± CI over warm windows."""
        if not self.tenants:
            return Estimate(mean=0.0, half_width=0.0, n=0,
                            confidence=confidence)
        estimates = [self.p99(name, confidence=confidence)
                     for name in self.tenants]
        return max(estimates, key=lambda e: e.mean)

    @property
    def total_slo_goodput_gbps(self) -> float:
        return sum(t.slo_goodput_gbps for t in self.tenants.values())

    @property
    def lost(self) -> int:
        return sum(t.lost for t in self.tenants.values())

    def table(self) -> str:
        rows = [(t.name, t.final_path, t.completed, t.rejected, t.lost,
                 fmt_ns(t.p50_ns), fmt_ns(t.p99_ns),
                 f"{t.goodput_gbps:.1f}", f"{t.slo_goodput_gbps:.1f}",
                 f"{100 * t.slo_attainment:.1f}%", t.migrations)
                for t in self.tenants.values()]
        mode = "adaptive" if self.adaptive else "static"
        return format_table(
            ["tenant", "path", "done", "rej", "lost", "p50", "p99",
             "gbps", "slo-gbps", "slo-att", "moves"],
            rows, title=f"serve ({mode}, {fmt_ns(self.elapsed_ns)})")


def mixed_tenant_workload(duration_ns: float = 1_500_000.0,
                          seed: int = 0) -> Tuple[TenantSpec, ...]:
    """The benchmark's four-tenant mix (every paper path occupied).

    * ``alpha`` — latency-sensitive 512 B READs (cache-resident working
      set: the advisor's SoC-friendly shape, path ②).
    * ``beta``/``delta`` — two throughput 4 KB WRITE streams (~80 Gbps
      each) over working sets larger than SoC DRAM (host-memory shape,
      path ①).  Together they stand in for the paper's ``N ≈ 200`` of
      network demand on the shared PCIe fabric.
    * ``gamma`` — a bulk host→SoC shipper (path ③) offering ~116 Gbps,
      ~2× the ``P − N`` budget.  Uncapped, its double PCIe1 crossing
      pushes the link past ``P`` and melts every tenant's tail; capped
      at the budget, the fabric stays feasible.

    Each tenant's request count is sized so all streams span roughly
    ``duration_ns`` of simulated time.
    """

    def _n(interval_ns: float) -> int:
        return max(1, int(duration_ns / interval_ns))

    return (
        TenantSpec(name="alpha", payload=512, interval_ns=2_000.0,
                   requests=_n(2_000.0), mix=OpMix(read=1.0, write=0.0),
                   slo=SloSpec(p99_ns=15_000.0),
                   working_set_bytes=4 * MB, workers=4, queue_limit=32,
                   seed=seed),
        TenantSpec(name="beta", payload=4 * KB, interval_ns=410.0,
                   requests=_n(410.0),
                   mix=OpMix(read=0.0, write=1.0),
                   slo=SloSpec(p99_ns=25_000.0),
                   working_set_bytes=32 * GB, workers=16, queue_limit=64,
                   seed=seed + 1),
        TenantSpec(name="delta", payload=4 * KB, interval_ns=410.0,
                   requests=_n(410.0),
                   mix=OpMix(read=0.0, write=1.0),
                   slo=SloSpec(p99_ns=25_000.0),
                   working_set_bytes=32 * GB, workers=16, queue_limit=64,
                   seed=seed + 3),
        TenantSpec(name="gamma", payload=64 * KB, interval_ns=4_500.0,
                   requests=_n(4_500.0),
                   mix=OpMix(read=0.0, write=1.0), bulk=True,
                   slo=SloSpec(p99_ns=120_000.0),
                   working_set_bytes=512 * MB, workers=4, queue_limit=4,
                   seed=seed + 2),
    )


def _static_placement(spec: TenantSpec,
                      assignment: Optional[Dict[str, CommPath]],
                      policy: PathPolicy) -> Placement:
    """The pinned baseline: a fixed path, no caps, no degradation."""
    if assignment and spec.name in assignment:
        path = assignment[spec.name]
        return Placement(path=path, responder=_RESPONDER[path],
                         rate_cap_gbps=None, degraded=False,
                         reason="static", advice_refs=())
    placed = policy.place(spec)
    return Placement(path=placed.path, responder=placed.responder,
                     rate_cap_gbps=None, degraded=False,
                     reason="static", advice_refs=placed.advice_refs)


class ServeSession:
    """The serving stack, wired and ready to run.

    :func:`run_serve` drives one to completion in a single call.
    Sharded execution (:mod:`repro.sim.shard`) instead steps sessions
    window by window via :meth:`advance`, keeping shard processes in
    conservative time lockstep.
    """

    def __init__(self, tenants: Sequence[TenantSpec], adaptive: bool = True,
                 static_assignment: Optional[Dict[str, CommPath]] = None,
                 testbed: Optional[Testbed] = None,
                 faults: Optional[FaultPlan] = None, fault_seed: int = 0,
                 interval_ns: float = 20_000.0,
                 window_ns: float = 100_000.0,
                 cooldown_ns: float = 60_000.0,
                 warmup_ns: Optional[float] = None,
                 trace: bool = False, engine: str = "event",
                 hybrid_config=None, channel=None, nic: str = "snic"):
        if engine not in ("event", "des-heap", "hybrid"):
            raise ValueError(f"unknown serve engine {engine!r}; "
                             "expected 'event', 'des-heap' or 'hybrid'")
        if nic not in ("snic", "rnic"):
            raise ValueError(f"unknown nic {nic!r}; "
                             "expected 'snic' or 'rnic'")
        if nic == "rnic" and any(t.bulk for t in tenants):
            raise ValueError("bulk (path-3) tenants need an off-path "
                             "SmartNIC; this machine carries an RNIC")
        tenants = tuple(tenants)
        if not tenants:
            raise ValueError("need at least one tenant")
        self.adaptive = adaptive
        self.engine = engine
        self.interval_ns = interval_ns
        self.warmup_ns = warmup_ns
        testbed = testbed or paper_testbed()
        n_clients = max(1, sum(1 for t in tenants if not t.bulk))
        self.tenants = tenants
        # "event" (and "hybrid" on top of it) runs on the time-bucketed
        # BatchSimulator — exact order parity with the heap queue, ~27%
        # faster on serving mixes; "des-heap" opts back into the heap.
        if engine == "des-heap":
            from repro.sim.engine import Simulator
            sim = Simulator()
        else:
            from repro.sim.batchq import BatchSimulator
            sim = BatchSimulator()
        # "rnic" builds a host-only machine (no SoC node): the policy
        # sees soc_available=False and terminates everything host-ward.
        self.cluster = SimCluster(testbed, sim=sim, n_clients=n_clients,
                                  nic=nic)
        self.tracer = Tracer().install(self.cluster) if trace else None
        self.telemetry = Telemetry(self.cluster)
        if faults is not None and not faults.empty:
            self.cluster.install_faults(faults, seed=fault_seed)
        self.ctx = RdmaContext(self.cluster)
        self.tracker = SloTracker(tenants, window_ns=window_ns)
        self.runtime = ServingRuntime(self.cluster, self.ctx, tenants,
                                      self.tracker)
        self.channel = channel
        if channel is not None:
            channel.bind(self)
            self.runtime.xshard = channel
        self.policy = PathPolicy(testbed, cooldown_ns=cooldown_ns)
        self._telemetry_start = self.telemetry.snapshot()

        self.decisions: List[Decision] = []
        scheduler = None
        if adaptive:
            scheduler = PathScheduler(self.runtime, self.policy,
                                      self.tracker, interval_ns=interval_ns,
                                      tracer=self.tracer,
                                      machine=(channel.shard
                                               if channel is not None
                                               else ""))
            scheduler.start()
            self.decisions = scheduler.decisions
        else:
            for spec in tenants:
                self.runtime.place(spec, _static_placement(
                    spec, static_assignment, self.policy))

        self.controller = None
        if engine == "hybrid":
            from repro.sim.hybrid import HybridController
            self.controller = HybridController(
                self.runtime, self.tracker, faults=faults,
                tick_ns=interval_ns, config=hybrid_config).install()
            if scheduler is not None:
                scheduler.on_decision = self.controller.on_decision

    @property
    def done(self) -> bool:
        """No more events: every stream served, every process exited."""
        return self.cluster.sim.peek() == float("inf")

    def advance(self, until: float) -> bool:
        """Run up to ``until`` ns of simulated time; True when drained.

        Once drained, further calls are no-ops and the clock stays at
        the last window boundary.
        """
        if not self.done:
            self.cluster.sim.run(until=until)
        return self.done

    def run_to_completion(self) -> None:
        self.cluster.sim.run()

    def apply_directive(self, message) -> None:
        """Enact one cluster-scheduler ``ctl`` directive.

        ``"serve-on:<machine>"`` points the tenant's requests at a
        remote machine's host relay; ``"serve-local"`` returns them
        home.  Directives arrive through the fabric like any other
        message, so they are window-logged and replay-safe.
        """
        note = message.note or ""
        if note.startswith("serve-on:"):
            self.runtime.remote_serve[message.tenant] = note.split(":", 1)[1]
            self.cluster.bump("sched.directives")
        elif note == "serve-local":
            self.runtime.remote_serve.pop(message.tenant, None)
            self.cluster.bump("sched.directives")
        else:
            raise ValueError(f"unknown ctl directive {note!r}")

    def heartbeat(self) -> dict:
        """Picklable progress digest for the sharded supervisor.

        Per tenant ``(arrivals, completed, rejected, lost, in_flight)``
        — the terms of the conservation identity the watchdog checks
        every window (arrivals = admitted + rejected; in-flight =
        admitted − finished) — plus the bound channel's fabric flow
        counts ``(sent, handed, fired, timeouts)``.

        Two further keys feed the cluster scheduler (the watchdog only
        reads ``"tenants"``/``"fabric"``, so they are additive):

        * ``"windows"`` — per tenant, the latest *closed* SLO window's
          ``(index, count, p99_ns, rejected, violations)`` digest (or
          ``None`` before the first), via the side-effect-free
          :meth:`~repro.sched.slo.SloTracker.closed_window_digest`;
        * ``"load"`` — this machine's ``(completed_total,
          remote_served, acked, rtt_ns_total)`` for load-aware
          placement.
        """
        tenants = {}
        windows = {}
        now = self.cluster.sim.now
        progress = self.runtime.progress()
        for spec in self.tenants:
            admitted, finished = progress[spec.name]
            rejected = self.tracker.rejected[spec.name]
            tenants[spec.name] = (
                admitted + rejected,
                self.tracker.completed[spec.name],
                rejected,
                self.tracker.lost[spec.name],
                admitted - finished,
            )
            windows[spec.name] = self.tracker.closed_window_digest(
                spec.name, now)
        channel = self.channel
        fabric = (channel.flow_counts() if channel is not None
                  else (0, 0, 0, 0))
        load = (sum(self.tracker.completed.values()),
                channel.served_count if channel is not None else 0,
                channel.acked_count if channel is not None else 0,
                channel.rtt_ns_total if channel is not None else 0.0)
        return {"tenants": tenants, "fabric": fabric,
                "windows": windows, "load": load}

    def finalize(self) -> ServeReport:
        elapsed = self.cluster.sim.now
        warmup = (self.warmup_ns if self.warmup_ns is not None
                  else 2 * self.interval_ns)
        return ServeReport(
            adaptive=self.adaptive,
            elapsed_ns=elapsed,
            tenants=_tenant_reports(self.tenants, self.runtime,
                                    self.tracker, self.decisions),
            decisions=self.decisions,
            path_gbps=_path_gbps(self.runtime, warmup),
            counters=dict(self.telemetry.delta(
                self._telemetry_start).deltas),
            tracer=self.tracer,
            engine=self.engine,
            hybrid_stats=(self.controller.stats()
                          if self.controller is not None else None),
            windows={t.name: self.tracker.window_series(t.name)
                     for t in self.tenants},
            conservation=self.heartbeat()["tenants"],
        )


def run_serve(tenants: Sequence[TenantSpec], adaptive: bool = True,
              static_assignment: Optional[Dict[str, CommPath]] = None,
              testbed: Optional[Testbed] = None,
              faults: Optional[FaultPlan] = None, fault_seed: int = 0,
              interval_ns: float = 20_000.0, window_ns: float = 100_000.0,
              cooldown_ns: float = 60_000.0,
              warmup_ns: Optional[float] = None,
              trace: bool = False, engine: str = "event",
              hybrid_config=None) -> ServeReport:
    """Serve every tenant stream to completion and report.

    ``warmup_ns`` bounds the steady-state window for per-path bandwidth
    accounting (defaults to two control ticks); completions before it
    still count toward per-tenant totals.

    ``engine`` selects the execution strategy: ``"event"`` (the default
    pure DES on the time-bucketed :class:`~repro.sim.batchq.
    BatchSimulator` queue — bit-identical run to run), ``"des-heap"``
    (the same DES on the binary-heap queue — the opt-out reference,
    event-order-identical to ``"event"``) or ``"hybrid"``, which
    installs a :class:`~repro.sim.hybrid.HybridController` that
    fast-forwards steady-state stretches through the operational-law
    recurrence (exact completion counts, latencies within the declared
    tolerances — see ``docs/performance.md``).  ``hybrid_config``
    optionally overrides :class:`~repro.sim.hybrid.HybridConfig`.
    """
    session = ServeSession(
        tenants, adaptive=adaptive, static_assignment=static_assignment,
        testbed=testbed, faults=faults, fault_seed=fault_seed,
        interval_ns=interval_ns, window_ns=window_ns,
        cooldown_ns=cooldown_ns, warmup_ns=warmup_ns, trace=trace,
        engine=engine, hybrid_config=hybrid_config)
    session.run_to_completion()
    return session.finalize()


def _tenant_reports(tenants: Sequence[TenantSpec], runtime: ServingRuntime,
                    tracker: SloTracker,
                    decisions: Sequence[Decision]) -> Dict[str, TenantReport]:
    reports: Dict[str, TenantReport] = {}
    for spec in tenants:
        records = [r for r in runtime.completions if r.tenant == spec.name]
        ok = sorted(r.latency_ns for r in records if r.ok)
        in_slo = [r for r in records
                  if r.ok and r.latency_ns <= spec.slo.deadline]
        span = (max((r.end_ns for r in records), default=0.0)
                - min((r.start_ns for r in records), default=0.0)) or 1.0
        good_bytes = spec.payload * len(ok)
        slo_bytes = spec.payload * len(in_slo)
        lease = runtime.lease(spec.name)
        moves = sum(1 for d in decisions
                    if d.tenant == spec.name
                    and d.kind in ("migrate", "failover"))
        reports[spec.name] = TenantReport(
            name=spec.name,
            final_path=("degraded" if lease.degraded else lease.path.value),
            completed=tracker.completed[spec.name],
            rejected=tracker.rejected[spec.name],
            lost=tracker.lost[spec.name],
            degraded=sum(1 for r in records if r.degraded),
            p50_ns=ok[len(ok) // 2] if ok else 0.0,
            p99_ns=(ok[min(len(ok) - 1, int(0.99 * len(ok)))]
                    if ok else 0.0),
            goodput_gbps=to_gbps(good_bytes / span),
            slo_goodput_gbps=to_gbps(slo_bytes / span),
            slo_attainment=(len(in_slo) / len(ok)) if ok else 0.0,
            migrations=moves,
        )
    return reports


def _path_gbps(runtime: ServingRuntime,
               warmup_ns: float) -> Dict[str, float]:
    """Steady-state delivered bandwidth per path, from completions."""
    by_path: Dict[str, List] = {}
    payload = {t.name: t.payload for t in runtime.specs}
    for r in runtime.completions:
        if r.ok and r.end_ns > warmup_ns:
            by_path.setdefault(r.path.value, []).append(r)
    result: Dict[str, float] = {}
    for path, records in by_path.items():
        span = (max(r.end_ns for r in records) - warmup_ns) or 1.0
        nbytes = sum(payload[r.tenant] for r in records)
        result[path] = to_gbps(nbytes / span)
    return result
